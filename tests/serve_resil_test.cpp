//===- tests/serve_resil_test.cpp - Overload, drain, breaker tests ------------===//
//
// Part of sharpie. The resilience layer of the serving stack (PR 9),
// driven through the same in-process API the socket shell uses:
// admission control under an overload storm, deadline expiry in the
// queue, graceful drain under load, the store circuit breaker with
// self-healing, the health op, the access-log disposition schema, and
// the deterministic client backoff schedule.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "front/ExitCodes.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace sharpie;
using namespace sharpie::serve;

namespace {

const char *IncrementProtocol = R"(
protocol increment {
  global a;
  local pc;

  init: a == 0 && forall t. pc[t] == 1;
  safe: forall t. pc[t] >= 2 ==> a > 0;

  transition inc {
    guard: pc[self] == 1;
    a := a + 1;
    pc[self] := 2;
  }

  template {
    sets: 1;
  }

  check {
    threads: 3;
    start { pc := 1; }
  }

  property "(exists t: pc(t) >= 2) -> a > 0";
  expect safe;
}
)";

class ResilTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "sharpie_resil_" +
          std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string Cmd = "rm -rf '" + Dir + "'";
    ASSERT_EQ(0, std::system(Cmd.c_str()));
  }

  void TearDown() override {
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  ServerOptions options() {
    ServerOptions O;
    O.StoreDir = Dir;
    O.RequestWorkers = 2;
    O.SynthWorkers = 1;
    return O;
  }

  VerifyRequest request() {
    VerifyRequest R;
    R.ProtocolText = IncrementProtocol;
    R.File = "increment.sharpie";
    return R;
  }

  /// A request that holds a pool worker for at least ~LatencyMs: the
  /// per-tuple latency fault keeps the solve slow, and a fault plan
  /// also bypasses the cache, so concurrent identical requests cannot
  /// collapse into one solve plus warm hits.
  VerifyRequest slowRequest(unsigned LatencyMs, int Tag = 0) {
    VerifyRequest R = request();
    R.File = "slow" + std::to_string(Tag) + ".sharpie";
    R.Faults = "worker_task:latency=" + std::to_string(LatencyMs) + "@always";
    return R;
  }

  std::string Dir;
};

// -- Client backoff ----------------------------------------------------------

TEST(BackoffTest, ScheduleIsDeterministicJitteredAndBounded) {
  RetryPolicy P;
  P.BaseMs = 100;
  P.MaxDelayMs = 30000;
  P.Seed = 42;

  // Attempt 0 is the first try: no delay ever.
  EXPECT_EQ(0, backoffDelayMs(P, 0, 0));
  EXPECT_EQ(0, backoffDelayMs(P, 0, 9999));

  // Pure function: the whole schedule replays exactly.
  std::vector<int64_t> A, B;
  for (unsigned I = 1; I <= 8; ++I) {
    A.push_back(backoffDelayMs(P, I, 0));
    B.push_back(backoffDelayMs(P, I, 0));
  }
  EXPECT_EQ(A, B);

  // Exponential envelope with +/-25% jitter: delay I sits inside
  // [0.75, 1.25) * BaseMs * 2^(I-1).
  for (unsigned I = 1; I <= 8; ++I) {
    double Exp = 100.0 * static_cast<double>(1u << (I - 1));
    EXPECT_GE(A[I - 1], static_cast<int64_t>(0.75 * Exp)) << "attempt " << I;
    EXPECT_LT(A[I - 1], static_cast<int64_t>(1.25 * Exp)) << "attempt " << I;
  }

  // Different seeds decorrelate: the schedules must not be identical.
  RetryPolicy Q = P;
  Q.Seed = 43;
  std::vector<int64_t> C;
  for (unsigned I = 1; I <= 8; ++I)
    C.push_back(backoffDelayMs(Q, I, 0));
  EXPECT_NE(A, C);

  // The server's retry_after_ms hint is a floor...
  EXPECT_EQ(5000, backoffDelayMs(P, 1, 5000));
  // ...and MaxDelayMs caps everything, hint included.
  EXPECT_EQ(P.MaxDelayMs, backoffDelayMs(P, 30, 0));
  EXPECT_EQ(P.MaxDelayMs, backoffDelayMs(P, 1, 99999999));
}

// -- Admission control -------------------------------------------------------

TEST_F(ResilTest, OverloadStormShedsWithRetryHintsAndStaysResponsive) {
  // The acceptance scenario: 2 workers, queue depth 4 (capacity 6),
  // 16 concurrent verifies. At most 6 are admitted; the rest must shed
  // immediately with a structured overloaded response, and the cheap
  // ops must answer while every worker is busy.
  ServerOptions O = options();
  O.QueueDepth = 4;
  Server Srv(O);
  ASSERT_EQ(6u, Srv.admissionCapacity());

  std::vector<std::thread> Ts;
  std::vector<Json> Resps(16);
  for (int I = 0; I < 16; ++I)
    Ts.emplace_back(
        [&, I] { Resps[I] = Srv.dispatch(slowRequest(400, I).encode()); });

  // While the storm is in flight: introspection answers inline.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Json H = Srv.healthJson();
  EXPECT_TRUE(H.get("ok").asBool());
  EXPECT_LE(H.get("admitted").asInt(), 6);
  EXPECT_GE(H.get("retry_after_ms").asInt(), 50);
  Json S = Srv.dispatch(parseJson("{\"op\":\"status\"}", nullptr));
  EXPECT_TRUE(S.get("ok").asBool());

  for (std::thread &T : Ts)
    T.join();

  int Ok = 0, Shed = 0;
  for (const Json &RJ : Resps) {
    VerifyResponse R = VerifyResponse::decode(RJ);
    if (R.Overloaded) {
      ++Shed;
      EXPECT_EQ(front::ExitOverloaded, R.Exit);
      EXPECT_EQ("shed", R.Disposition);
      // A shed always carries an actionable hint.
      EXPECT_GE(R.RetryAfterMs, 50);
      EXPECT_LE(R.RetryAfterMs, 30000);
      EXPECT_NE(std::string::npos, R.Error.find("overloaded"));
    } else {
      ++Ok;
      EXPECT_EQ(front::ExitVerified, R.Exit);
      EXPECT_EQ("ok", R.Disposition);
    }
  }
  EXPECT_EQ(16, Ok + Shed);
  EXPECT_LE(Ok, 6);   // Never more than the admission capacity.
  EXPECT_GE(Shed, 10); // Everything past capacity shed.
  EXPECT_EQ(0u, Srv.admitted()); // No slot leaked.
  EXPECT_EQ(static_cast<int64_t>(Shed),
            Srv.statusJson().get("ctr_requests_shed").asInt());
}

TEST_F(ResilTest, DeadlineExpiredInQueueRejectsWithoutSolving) {
  ServerOptions O = options();
  O.MaxRequestSeconds = 0.2;
  Server Srv(O);

  // An arrival stamp 1s in the past: the whole budget evaporated while
  // queued, so the request is rejected before parsing a byte.
  auto Stale = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  VerifyResponse R = Srv.verify(request(), nullptr, Stale);
  EXPECT_EQ(front::ExitOverloaded, R.Exit);
  EXPECT_TRUE(R.Overloaded);
  EXPECT_EQ("deadline", R.Disposition);
  EXPECT_GE(R.RetryAfterMs, 50);
  EXPECT_NE(std::string::npos, R.Error.find("deadline exceeded in queue"));
  // Never looked at the store, never wrote to it.
  StoreStats St = Srv.store().stats();
  EXPECT_EQ(0u, St.T1Hits + St.T1Misses + St.T1Writes);

  // A fresh arrival under the same ceiling verifies normally.
  ServerOptions O2 = options();
  O2.MaxRequestSeconds = 60;
  Server Srv2(O2);
  EXPECT_EQ(front::ExitVerified, Srv2.verify(request()).Exit);
}

// -- Graceful drain ----------------------------------------------------------

TEST_F(ResilTest, DrainUnderLoadCancelsStragglersAndShedsNewWork) {
  ServerOptions O = options();
  O.QueueDepth = 4;
  O.DrainTimeoutSeconds = 0.05; // Cancel stragglers almost immediately.
  Server Srv(O);

  // Four in-flight requests, each pinned slow enough (per-tuple 400ms
  // latency faults) that none can finish before the drain fires.
  std::vector<std::thread> Ts;
  std::vector<Json> Resps(4);
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back(
        [&, I] { Resps[I] = Srv.dispatch(slowRequest(400, I).encode()); });
  while (Srv.admitted() < 4)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  Srv.drain();
  EXPECT_TRUE(Srv.draining());
  EXPECT_EQ(0u, Srv.admitted()); // Everything settled before drain returned.

  // Work arriving after (or during) a drain sheds with its own
  // disposition, so clients know to go elsewhere rather than back off.
  VerifyResponse Late = VerifyResponse::decode(Srv.dispatch(request().encode()));
  EXPECT_TRUE(Late.Overloaded);
  EXPECT_EQ("draining", Late.Disposition);

  for (std::thread &T : Ts)
    T.join();
  int DrainCancelled = 0;
  for (const Json &RJ : Resps) {
    VerifyResponse R = VerifyResponse::decode(RJ);
    // Each in-flight request either finished in time or was cancelled
    // by the drain -- nothing hangs, nothing errors.
    if (R.Disposition == "drain_cancelled") {
      ++DrainCancelled;
      EXPECT_EQ(front::ExitInconclusive, R.Exit);
    } else {
      EXPECT_EQ("ok", R.Disposition);
      EXPECT_EQ(front::ExitVerified, R.Exit);
    }
  }
  EXPECT_GE(DrainCancelled, 1); // 400ms tuples vs a 50ms drain window.
  EXPECT_GE(Srv.statusJson().get("ctr_drain_cancelled").asInt(), 1);
  // Cancelled runs never publish partial results.
  EXPECT_EQ(0u, Srv.store().stats().T1Writes);

  Srv.drain(); // Idempotent.
}

// -- Store circuit breaker and self-healing ----------------------------------

TEST_F(ResilTest, BreakerTripsOnCorruptStreakAndRecoversThroughHalfOpen) {
  ResultStore St(Dir);
  St.setTuning({2, 0.05}); // Trip after 2 incidents, 50ms cooldown.
  std::atomic<bool> Failing{true};
  St.setFaultHook([&](const char *) { return Failing.load(); });

  front::CanonicalHash H{0x1234, 0x5678};
  ResultStore::T1Entry E;
  E.Exit = front::ExitVerified;
  E.Verdict = "VERIFIED\n";

  EXPECT_STREQ("closed", St.breakerStateName());
  EXPECT_FALSE(St.store(H, E)); // Incident 1.
  EXPECT_STREQ("closed", St.breakerStateName());
  EXPECT_FALSE(St.store(H, E)); // Incident 2: trips.
  EXPECT_STREQ("open", St.breakerStateName());
  EXPECT_EQ(1u, St.breakerTrips());

  // Open: the disk is never touched, operations are counted Bypassed.
  EXPECT_FALSE(St.lookup(H).has_value());
  EXPECT_FALSE(St.store(H, E));
  EXPECT_GE(St.stats().Bypassed, 2u);

  // Cooldown elapses: half-open lets a probe through; while the fault
  // persists the probe re-trips the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_STREQ("half_open", St.breakerStateName());
  EXPECT_FALSE(St.store(H, E));
  EXPECT_STREQ("open", St.breakerStateName());
  EXPECT_EQ(2u, St.breakerTrips());

  // Disk heals: the next half-open probe succeeds and closes the
  // breaker for good.
  Failing.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_STREQ("half_open", St.breakerStateName());
  EXPECT_TRUE(St.store(H, E));
  EXPECT_STREQ("closed", St.breakerStateName());
  ASSERT_TRUE(St.lookup(H).has_value());
  EXPECT_EQ("VERIFIED\n", St.lookup(H)->Verdict);
  EXPECT_EQ(2u, St.breakerTrips());
}

TEST_F(ResilTest, CorruptT1EntryIsHealedInPlace) {
  Server Srv(options());
  VerifyResponse Cold = Srv.verify(request());
  ASSERT_EQ(front::ExitVerified, Cold.Exit);
  ASSERT_EQ(32u, Cold.Hash.size());

  // Garble the entry on disk; the next lookup must read it as a miss,
  // unlink the corpse, and the re-solve must rewrite the slot.
  std::string Path = Dir + "/t1/" + Cold.Hash + ".entry";
  {
    std::ofstream Out(Path, std::ios::trunc);
    ASSERT_TRUE(Out.good());
    Out << "not an entry file\n";
  }
  VerifyResponse Again = Srv.verify(request());
  EXPECT_EQ(front::ExitVerified, Again.Exit);
  EXPECT_EQ("miss", Again.Cache);
  StoreStats S = Srv.store().stats();
  EXPECT_EQ(1u, S.T1Corrupt);
  EXPECT_EQ(1u, S.T1Healed);
  EXPECT_EQ(2u, S.T1Writes);
  // And the slot is warm again.
  EXPECT_EQ("hit", Srv.verify(request()).Cache);
  EXPECT_STREQ("closed", Srv.store().breakerStateName());
}

TEST_F(ResilTest, ServerBypassesABrokenStoreAndKeepsServing) {
  // The daemon-level view: a store whose every access corrupts trips
  // the breaker, and verifies keep succeeding -- just cold.
  ServerOptions O = options();
  O.Faults = "seed=3;store_read:throw@always;store_write:throw@always";
  O.StoreTuning.BreakerThreshold = 2;
  O.StoreTuning.BreakerCooldownSeconds = 60; // Stays open for the test.
  Server Srv(O);

  for (int I = 0; I < 3; ++I) {
    VerifyRequest R = request();
    R.File = "req" + std::to_string(I) + ".sharpie";
    EXPECT_EQ(front::ExitVerified, Srv.verify(R).Exit) << I;
  }
  EXPECT_STREQ("open", Srv.store().breakerStateName());
  EXPECT_GE(Srv.store().breakerTrips(), 1u);
  EXPECT_GE(Srv.store().stats().Bypassed, 1u);
  Json H = Srv.healthJson();
  EXPECT_EQ("open", H.get("store_breaker").asString());
  EXPECT_GE(H.get("breaker_trips").asInt(), 1);
  // The registry saw the trip too (ctr_breaker_trips in DESIGN.md s12).
  EXPECT_GE(Srv.registry().counterSum("breaker_trips"), 1);
}

// -- Health op ---------------------------------------------------------------

TEST_F(ResilTest, HealthOpReportsReadinessAndAdmissionLoad) {
  ServerOptions O = options();
  O.QueueDepth = 4;
  Server Srv(O);
  Json H = Srv.dispatch(parseJson("{\"op\":\"health\"}", nullptr));
  EXPECT_TRUE(H.get("ok").asBool());
  EXPECT_EQ("ready", H.get("state").asString());
  EXPECT_FALSE(H.get("draining").asBool());
  EXPECT_EQ(0, H.get("admitted").asInt());
  EXPECT_EQ(6, H.get("admission_capacity").asInt());
  EXPECT_GE(H.get("retry_after_ms").asInt(), 50);
  EXPECT_EQ("closed", H.get("store_breaker").asString());

  Srv.drain();
  Json D = Srv.dispatch(parseJson("{\"op\":\"health\"}", nullptr));
  EXPECT_EQ("draining", D.get("state").asString());
  EXPECT_TRUE(D.get("draining").asBool());
}

// -- Access-log disposition schema -------------------------------------------

TEST_F(ResilTest, AccessLogPinsTheDispositionSchema) {
  std::string LogPath = Dir + "_access.log";
  ::unlink(LogPath.c_str());
  ServerOptions O = options();
  O.RequestWorkers = 1;
  O.QueueDepth = 0; // Capacity 1: the second concurrent request sheds.
  O.AccessLogPath = LogPath;
  {
    Server Srv(O);
    // Line 1: a normal ok request.
    ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
    // Line 2: a shed -- fill the single slot with a slow request, then
    // dispatch into the full queue.
    std::thread Busy(
        [&] { (void)Srv.dispatch(slowRequest(400).encode()); });
    while (Srv.admitted() < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    VerifyResponse Shed =
        VerifyResponse::decode(Srv.dispatch(request().encode()));
    EXPECT_EQ("shed", Shed.Disposition);
    Busy.join();
    // Line 4 (after the slow request's own line): a draining shed.
    Srv.drain();
    VerifyResponse Drn =
        VerifyResponse::decode(Srv.dispatch(request().encode()));
    EXPECT_EQ("draining", Drn.Disposition);
  }

  std::ifstream In(LogPath);
  ASSERT_TRUE(In.good());
  std::vector<Json> Requests;
  bool SawDrainEvent = false;
  std::string Line;
  while (std::getline(In, Line)) {
    std::string Err;
    Json J = parseJson(Line, &Err);
    ASSERT_TRUE(Err.empty()) << Err << " in: " << Line;
    if (J.get("event").asString() == "drain")
      SawDrainEvent = true;
    else if (J.get("event").asString() == "request")
      Requests.push_back(J);
  }
  ::unlink(LogPath.c_str());

  // Every request line carries a disposition from the pinned
  // vocabulary; sheds also carry the retry context.
  const std::set<std::string> Vocab = {"ok",       "shed",
                                       "draining", "deadline",
                                       "cancelled", "drain_cancelled"};
  ASSERT_GE(Requests.size(), 4u);
  int Ok = 0, ShedN = 0, DrainingN = 0;
  for (const Json &R : Requests) {
    std::string D = R.get("disposition").asString();
    EXPECT_TRUE(Vocab.count(D)) << "unknown disposition: " << D;
    if (D == "ok") {
      ++Ok;
      EXPECT_EQ("verified", R.get("outcome").asString());
      // Present and numeric; a zero wait round-trips as an integer.
      Json::Type QT = R.get("queue_seconds").type();
      EXPECT_TRUE(QT == Json::Type::Double || QT == Json::Type::Int);
      EXPECT_GE(R.get("queue_seconds").asDouble(), 0.0);
    } else if (D == "shed" || D == "draining") {
      D == "shed" ? ++ShedN : ++DrainingN;
      EXPECT_GE(R.get("retry_after_ms").asInt(), 50);
      EXPECT_EQ(Json::Type::Int, R.get("admitted").type());
      EXPECT_EQ(Json::Type::Int, R.get("capacity").type());
    }
  }
  EXPECT_GE(Ok, 2); // The warm-up and the slow request both finished.
  EXPECT_EQ(1, ShedN);
  EXPECT_EQ(1, DrainingN);
  EXPECT_TRUE(SawDrainEvent); // drain() wrote its summary line.
}

// -- Serve-layer chaos under concurrency (also the TSan target) --------------

TEST_F(ResilTest, ConcurrentDispatchWithStoreFaultsIsSafe) {
  // Four concurrent dispatches racing probabilistic store_read /
  // store_write corruption, breaker transitions, health probes and a
  // final drain. Under TSan this pins the locking of the admission
  // counters, the token registry, the shared fault injector and the
  // breaker.
  ServerOptions O = options();
  O.RequestWorkers = 4; // All four dispatches genuinely race.
  O.Faults = "seed=5;store_read:throw@p=0.5;store_write:throw@p=0.5";
  O.StoreTuning.BreakerThreshold = 2;
  O.StoreTuning.BreakerCooldownSeconds = 0.01;
  Server Srv(O);
  std::vector<std::thread> Ts;
  std::atomic<int> Verified{0};
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back([&, I] {
      VerifyRequest R = request();
      R.File = "req" + std::to_string(I) + ".sharpie";
      VerifyResponse Resp =
          VerifyResponse::decode(Srv.dispatch(R.encode()));
      if (Resp.Exit == front::ExitVerified)
        Verified.fetch_add(1);
      (void)Srv.healthJson().dump();
      (void)Srv.statusJson().dump();
    });
  for (std::thread &T : Ts)
    T.join();
  // Store chaos must never change verdicts, only cache traffic.
  EXPECT_EQ(4, Verified.load());
  EXPECT_EQ(0u, Srv.admitted());
  Srv.drain();
  EXPECT_EQ("draining",
            Srv.healthJson().get("state").asString());
}

} // namespace
