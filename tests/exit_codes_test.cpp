//===- tests/exit_codes_test.cpp - Exit-code contract tests -------------------===//
//
// Part of sharpie. front/ExitCodes.h is a wire contract: scripts, the
// ctest entries, sweep.sh and the serving protocol all key on the
// numeric values. This test pins them -- a renumbering must fail loudly
// here, not silently break every consumer.
//
//===----------------------------------------------------------------------===//

#include "front/ExitCodes.h"

#include <gtest/gtest.h>

#include <string>

using namespace sharpie::front;

TEST(ExitCodes, ValuesArePinned) {
  EXPECT_EQ(0, ExitVerified);
  EXPECT_EQ(1, ExitUnsafe);
  EXPECT_EQ(2, ExitUnknown);
  EXPECT_EQ(3, ExitError);
  EXPECT_EQ(4, ExitInconclusive);
  EXPECT_EQ(5, ExitOverloaded);
}

TEST(ExitCodes, NamesMatchTheProtocolVocabulary) {
  EXPECT_STREQ("verified", exitCodeName(ExitVerified));
  EXPECT_STREQ("unsafe", exitCodeName(ExitUnsafe));
  EXPECT_STREQ("unknown", exitCodeName(ExitUnknown));
  EXPECT_STREQ("error", exitCodeName(ExitError));
  EXPECT_STREQ("inconclusive", exitCodeName(ExitInconclusive));
  EXPECT_STREQ("overloaded", exitCodeName(ExitOverloaded));
}

TEST(ExitCodes, OutOfRangeCodesAreInvalidNotUB) {
  EXPECT_STREQ("invalid", exitCodeName(-1));
  EXPECT_STREQ("invalid", exitCodeName(6));
  EXPECT_STREQ("invalid", exitCodeName(255));
}
