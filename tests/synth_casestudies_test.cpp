//===- tests/synth_casestudies_test.cpp - Fig. 6 lower-table case studies -----===//
//
// Part of sharpie. End-to-end synthesis for the ticket lock, filter lock,
// and one-third rule (paper Sec. 2 / Fig. 6 lower table).
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::protocols;

namespace {

synth::SynthResult runBundle(ProtocolBundle &B) {
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  return synth::synthesize(*B.Sys, Opts);
}

TEST(CaseStudies, ExplicitModelsAreSafe) {
  for (BundleFactory Make : {makeTicketLock, makeFilterLock, makeOneThird}) {
    logic::TermManager M;
    ProtocolBundle B = Make(M);
    explct::ExplicitResult R = explct::explore(*B.Sys, B.Explicit);
    EXPECT_TRUE(R.Safe) << B.Sys->name();
    EXPECT_GT(R.NumStates, 1u) << B.Sys->name();
  }
}

TEST(CaseStudies, TicketLock) {
  logic::TermManager M;
  ProtocolBundle B = makeTicketLock(M);
  synth::SynthResult R = runBundle(B);
  EXPECT_TRUE(R.Verified) << R.Note;
  for (logic::Term S : R.SetBodies)
    printf("  set: %s\n", logic::toString(S).c_str());
  for (logic::Term A : R.Atoms)
    printf("  atom: %s\n", logic::toString(A).c_str());
  printf("  tuples=%u smt=%u time=%.2fs\n", R.Stats.TuplesTried,
         R.Stats.SmtChecks, R.Stats.Seconds);
}

TEST(CaseStudies, FilterLock) {
  logic::TermManager M;
  ProtocolBundle B = makeFilterLock(M);
  synth::SynthResult R = runBundle(B);
  EXPECT_TRUE(R.Verified) << R.Note;
  printf("  tuples=%u smt=%u time=%.2fs\n", R.Stats.TuplesTried,
         R.Stats.SmtChecks, R.Stats.Seconds);
}

TEST(CaseStudies, OneThird) {
  logic::TermManager M;
  ProtocolBundle B = makeOneThird(M);
  synth::SynthResult R = runBundle(B);
  EXPECT_TRUE(R.Verified) << R.Note;
  printf("  tuples=%u smt=%u time=%.2fs\n", R.Stats.TuplesTried,
         R.Stats.SmtChecks, R.Stats.Seconds);
}

} // namespace
