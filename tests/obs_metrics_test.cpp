//===- tests/obs_metrics_test.cpp - Registry, exposition, flight ring ---------===//
//
// Part of sharpie. Pins the service-telemetry layer:
//
//   * HistSummary percentile semantics -- nearest-rank, exact from
//     summarize() for 0/1/2 samples, bucket-approximated after merge();
//   * the log2 bucket geometry (bucketFor / bucketUpperBound);
//   * MetricsRegistry accumulation across labeled requests;
//   * the Prometheus text exposition: HELP/TYPE pairs, every
//     outcome x cache-tier combination, cumulative le-buckets, name
//     sanitization and label escaping;
//   * the FlightRecorder's fixed-memory contract: oversized requests are
//     clipped, old ones evicted, and approxBytes() never exceeds
//     memoryCeilingBytes() no matter what is thrown at it;
//   * renderFlightTrace producing a parseable Chrome-trace JSON document.
//
//===----------------------------------------------------------------------===//

#include "obs/Flight.h"
#include "obs/Metrics.h"

#include "serve/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <string>

using namespace sharpie;
using namespace sharpie::obs;

namespace {

/// Runs samples through a real tracer and returns the merged summary for
/// histogram "h" -- the exact summarize() path the pipeline uses.
HistSummary summarizeOf(std::initializer_list<double> Samples) {
  Tracer T;
  TraceBuffer *TB = T.worker(0);
  for (double V : Samples)
    TB->sample("h", V);
  const HistSummary *H = T.metrics().hist("h");
  return H ? *H : HistSummary{};
}

// -- Percentile semantics ----------------------------------------------------

TEST(HistSummaryTest, ZeroSamplesMeansNoHistogramAtAll) {
  Tracer T;
  (void)T.worker(0);
  EXPECT_EQ(nullptr, T.metrics().hist("h"));
  // And a default summary answers 0 everywhere rather than faulting.
  HistSummary Empty;
  EXPECT_EQ(0u, Empty.Count);
  EXPECT_EQ(0.0, Empty.mean());
  EXPECT_EQ(0.0, Empty.percentileFromBuckets(0.99));
}

TEST(HistSummaryTest, OneSampleIsEveryPercentile) {
  HistSummary H = summarizeOf({7.25});
  EXPECT_EQ(1u, H.Count);
  EXPECT_EQ(7.25, H.Min);
  EXPECT_EQ(7.25, H.Max);
  EXPECT_EQ(7.25, H.P50);
  EXPECT_EQ(7.25, H.P90);
  EXPECT_EQ(7.25, H.P99);
}

TEST(HistSummaryTest, TwoSamplesSplitNearestRank) {
  // Nearest-rank with n=2: rank(0.5) = ceil(1.0) = 1 -> the lower
  // sample; rank(0.9) = rank(0.99) = 2 -> the upper sample.
  HistSummary H = summarizeOf({3.0, 11.0});
  EXPECT_EQ(2u, H.Count);
  EXPECT_EQ(3.0, H.P50);
  EXPECT_EQ(11.0, H.P90);
  EXPECT_EQ(11.0, H.P99);
  EXPECT_EQ(7.0, H.mean());
}

TEST(HistSummaryTest, TenSamplesNearestRankIsExact) {
  HistSummary H = summarizeOf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  // rank(0.5) = 5 -> 5; rank(0.9) = 9 -> 9; rank(0.99) = 10 -> 10.
  EXPECT_EQ(5.0, H.P50);
  EXPECT_EQ(9.0, H.P90);
  EXPECT_EQ(10.0, H.P99);
}

// -- Bucket geometry ---------------------------------------------------------

TEST(HistSummaryTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(std::ldexp(1.0, HistSummary::MinExp),
            HistSummary::bucketUpperBound(0));
  EXPECT_EQ(1.0, HistSummary::bucketUpperBound(
                     static_cast<unsigned>(-HistSummary::MinExp)));
  // Bucket upper bounds are inclusive: an exact power of two belongs to
  // the bucket it bounds, values just above spill into the next one.
  unsigned BucketOfOne = HistSummary::bucketFor(1.0);
  EXPECT_EQ(1.0, HistSummary::bucketUpperBound(BucketOfOne));
  EXPECT_EQ(BucketOfOne + 1, HistSummary::bucketFor(1.0001));
  EXPECT_EQ(BucketOfOne + 1, HistSummary::bucketFor(2.0));
}

TEST(HistSummaryTest, BucketForClampsTheTails) {
  EXPECT_EQ(0u, HistSummary::bucketFor(0.0));
  EXPECT_EQ(0u, HistSummary::bucketFor(-5.0));
  EXPECT_EQ(0u, HistSummary::bucketFor(std::ldexp(1.0, HistSummary::MinExp)));
  EXPECT_EQ(HistSummary::NumBuckets - 1, HistSummary::bucketFor(1e30));
}

TEST(HistSummaryTest, MergeApproximatesPercentilesFromBuckets) {
  HistSummary A = summarizeOf({1.5, 1.5, 1.5});
  HistSummary B = summarizeOf({100.0});
  A.merge(B);
  EXPECT_EQ(4u, A.Count);
  EXPECT_EQ(1.5, A.Min);
  EXPECT_EQ(100.0, A.Max);
  EXPECT_EQ(104.5, A.Sum);
  // Rank(0.5) = 2 lands in the bucket holding the 1.5s; the answer is
  // that bucket's upper bound (2.0) -- an upper-bound approximation.
  EXPECT_EQ(2.0, A.P50);
  // Rank(0.99) = 4 lands in the 100.0 bucket (upper bound 128), clamped
  // to the exact observed Max.
  EXPECT_EQ(100.0, A.P99);
}

TEST(HistSummaryTest, MergeIntoEmptyCopiesAndMergeOfEmptyIsNoop) {
  HistSummary A;
  HistSummary B = summarizeOf({4.0, 8.0});
  A.merge(B);
  EXPECT_EQ(2u, A.Count);
  EXPECT_EQ(4.0, A.Min);
  EXPECT_EQ(8.0, A.Max);
  HistSummary Empty;
  HistSummary C = A;
  C.merge(Empty);
  EXPECT_EQ(A.Count, C.Count);
  EXPECT_EQ(A.P99, C.P99);
}

// -- MetricsRegistry ---------------------------------------------------------

MetricsSummary summaryWith(int64_t Checks, double Ms) {
  Tracer T;
  TraceBuffer *TB = T.worker(0);
  TB->counter("smt_checks", Checks);
  TB->sample("smt_ms", Ms);
  return T.metrics();
}

TEST(MetricsRegistryTest, RecordsAccumulateByLabelAndName) {
  MetricsRegistry R;
  EXPECT_EQ(0u, R.recorded());
  R.record(Outcome::Verified, CacheTier::Cold, summaryWith(10, 5.0), 1.5);
  R.record(Outcome::Verified, CacheTier::T1Hit, summaryWith(0, 0.25), 0.01);
  R.record(Outcome::Error, CacheTier::Cold, summaryWith(3, 2.0), 0.5);
  EXPECT_EQ(3u, R.recorded());
  EXPECT_EQ(13, R.counterSum("smt_checks"));
  EXPECT_EQ(0, R.counterSum("never_emitted"));

  MetricsRegistry::Snapshot S = R.snapshot();
  auto Idx = [](Outcome O, CacheTier T) {
    return std::make_pair(static_cast<unsigned>(O), static_cast<unsigned>(T));
  };
  auto [VO, VC] = Idx(Outcome::Verified, CacheTier::Cold);
  EXPECT_EQ(1u, S.Requests[VO][VC]);
  EXPECT_DOUBLE_EQ(1.5, S.RequestSeconds[VO][VC]);
  auto [EO, EC] = Idx(Outcome::Error, CacheTier::Cold);
  EXPECT_EQ(1u, S.Requests[EO][EC]);
  auto [NO, NT] = Idx(Outcome::NotVerified, CacheTier::T2Warm);
  EXPECT_EQ(0u, S.Requests[NO][NT]);

  ASSERT_EQ(1u, S.Hists.size());
  EXPECT_EQ("smt_ms", S.Hists[0].first);
  EXPECT_EQ(3u, S.Hists[0].second.Count);
  EXPECT_EQ(0.25, S.Hists[0].second.Min);
  EXPECT_EQ(5.0, S.Hists[0].second.Max);
}

// -- Prometheus exposition ---------------------------------------------------

TEST(PromTest, SanitizeNameAndEscapeLabel) {
  EXPECT_EQ("smt_ms_houdini", promSanitizeName("smt_ms.houdini"));
  EXPECT_EQ("card_axioms_unary", promSanitizeName("card-axioms/unary"));
  EXPECT_EQ("_9lives", promSanitizeName("9lives"));
  EXPECT_EQ("ok:name_", promSanitizeName("ok:name "));
  EXPECT_EQ("", promSanitizeName(""));
  EXPECT_EQ("a\\\\b\\\"c\\nd", promEscapeLabel("a\\b\"c\nd"));
  EXPECT_EQ("plain", promEscapeLabel("plain"));
}

TEST(PromTest, ExpositionCarriesEveryLabelComboAndHistBuckets) {
  MetricsRegistry R;
  R.record(Outcome::Verified, CacheTier::Cold, summaryWith(4, 3.0), 2.0);
  R.record(Outcome::Verified, CacheTier::T1Hit, summaryWith(0, 0.5), 0.01);

  std::vector<PromGauge> Gauges;
  Gauges.push_back({"in_flight_requests", "Requests currently running.", 2,
                    {}});
  Gauges.push_back({"server_info", "Server identity.", 1,
                    {{"store_dir", "/tmp/with\"quote"}, {"bound", "unix:x"}}});
  std::string P = renderProm(R.snapshot(), Gauges);

  // All 12 outcome x tier series are present, including never-hit ones.
  for (const char *O : {"verified", "not_verified", "inconclusive", "error"})
    for (const char *T : {"t1_hit", "t2_warm", "cold"}) {
      std::string Series = std::string("sharpie_requests_total{outcome=\"") +
                           O + "\",cache_tier=\"" + T + "\"} ";
      EXPECT_NE(std::string::npos, P.find(Series)) << Series;
    }
  EXPECT_NE(std::string::npos,
            P.find("sharpie_requests_total{outcome=\"verified\","
                   "cache_tier=\"cold\"} 1\n"));
  EXPECT_NE(std::string::npos,
            P.find("sharpie_request_seconds_total{outcome=\"verified\","
                   "cache_tier=\"cold\"} 2\n"));

  // Counters: HELP/TYPE pair and the _total suffix.
  EXPECT_NE(std::string::npos,
            P.find("# TYPE sharpie_ctr_smt_checks_total counter\n"
                   "sharpie_ctr_smt_checks_total 4\n"));

  // Histogram: sanitized name, cumulative le-buckets ending at +Inf,
  // _sum and _count. 0.5 and 3.0 land in distinct buckets (le 0.5, 4).
  EXPECT_NE(std::string::npos, P.find("# TYPE sharpie_hist_smt_ms histogram"));
  EXPECT_NE(std::string::npos,
            P.find("sharpie_hist_smt_ms_bucket{le=\"0.5\"} 1\n"));
  EXPECT_NE(std::string::npos,
            P.find("sharpie_hist_smt_ms_bucket{le=\"4\"} 2\n"));
  EXPECT_NE(std::string::npos,
            P.find("sharpie_hist_smt_ms_bucket{le=\"+Inf\"} 2\n"));
  EXPECT_NE(std::string::npos, P.find("sharpie_hist_smt_ms_sum 3.5\n"));
  EXPECT_NE(std::string::npos, P.find("sharpie_hist_smt_ms_count 2\n"));

  // Gauges: unlabeled and labeled with escaped values.
  EXPECT_NE(std::string::npos,
            P.find("# TYPE sharpie_in_flight_requests gauge\n"
                   "sharpie_in_flight_requests 2\n"));
  EXPECT_NE(std::string::npos,
            P.find("sharpie_server_info{store_dir=\"/tmp/with\\\"quote\","
                   "bound=\"unix:x\"} 1\n"));

  // Every exposition line is a comment or `name{labels} value`.
  ASSERT_FALSE(P.empty());
  EXPECT_EQ('\n', P.back());
}

// -- FlightRecorder ----------------------------------------------------------

FlightRecord oversizedRecord(uint64_t Id, size_t NumEvents,
                             size_t DetailLen) {
  FlightRecord R;
  R.RequestId = Id;
  R.Hash = "deadbeefdeadbeefdeadbeefdeadbeef";
  R.Outcome = "verified";
  R.TotalSeconds = 0.5;
  for (size_t I = 0; I < NumEvents; ++I) {
    Event E;
    E.Kind = I % 2 ? EventKind::SpanEnd : EventKind::SpanBegin;
    E.Worker = static_cast<uint32_t>(I % 4);
    E.Name = "synth";
    E.Detail = std::string(DetailLen, 'x');
    E.TimeUs = static_cast<double>(I);
    R.Events.push_back(std::move(E));
  }
  return R;
}

TEST(FlightRecorderTest, MemoryStaysUnderTheCeilingUnderAbuse) {
  FlightRecorder::Config C;
  C.Capacity = 4;
  C.MaxEventsPerRequest = 16;
  C.MaxDetailBytes = 8;
  FlightRecorder F(C);
  EXPECT_EQ(0u, F.approxBytes());
  // 100 requests, each 10x over the event cap with 64x-over details.
  for (uint64_t Id = 1; Id <= 100; ++Id) {
    F.record(oversizedRecord(Id, 160, 512));
    EXPECT_LE(F.approxBytes(), F.memoryCeilingBytes());
    EXPECT_LE(F.retained(), C.Capacity);
  }
  EXPECT_EQ(4u, F.retained());
  // Oldest evicted: only the last four ids remain, oldest first.
  std::vector<FlightRecord> All = F.dump();
  ASSERT_EQ(4u, All.size());
  EXPECT_EQ(97u, All[0].RequestId);
  EXPECT_EQ(100u, All[3].RequestId);
  // Truncation is accounted: 160 - 16 = 144 clipped events.
  EXPECT_EQ(16u, All[0].Events.size());
  EXPECT_EQ(144u, All[0].DroppedEvents);
  for (const Event &E : All[0].Events)
    EXPECT_LE(E.Detail.size(), C.MaxDetailBytes);
}

TEST(FlightRecorderTest, DumpFiltersByRequestIdAndZeroCapacityDisables) {
  FlightRecorder F({4, 64, 32});
  F.record(oversizedRecord(7, 3, 4));
  F.record(oversizedRecord(9, 3, 4));
  EXPECT_EQ(1u, F.dump(7).size());
  EXPECT_EQ(7u, F.dump(7)[0].RequestId);
  EXPECT_TRUE(F.dump(12345).empty());
  EXPECT_EQ(2u, F.dump(0).size());

  FlightRecorder Off({0, 64, 32});
  Off.record(oversizedRecord(1, 3, 4));
  EXPECT_EQ(0u, Off.retained());
  EXPECT_EQ(0u, Off.memoryCeilingBytes());
}

TEST(FlightRecorderTest, TraceRendersAsParseableChromeTraceJson) {
  FlightRecorder F({4, 64, 32});
  F.record(oversizedRecord(7, 6, 4));
  std::string Doc = renderFlightTrace(F.dump());
  std::string Err;
  serve::Json J = serve::parseJson(Doc, &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  const serve::Json &Events = J.get("traceEvents");
  ASSERT_TRUE(Events.isArray());
  // process_name metadata + the six span events.
  ASSERT_EQ(7u, Events.asArray().size());
  const serve::Json &Meta = Events.asArray()[0];
  EXPECT_EQ("M", Meta.get("ph").asString());
  EXPECT_EQ("process_name", Meta.get("name").asString());
  EXPECT_EQ(7, Meta.get("pid").asInt());
  EXPECT_NE(std::string::npos,
            Meta.get("args").get("name").asString().find("verified"));
  const serve::Json &First = Events.asArray()[1];
  EXPECT_EQ("B", First.get("ph").asString());
  EXPECT_EQ("synth", First.get("name").asString());
  EXPECT_EQ(7, First.get("pid").asInt());

  std::string Jsonl = renderFlightJsonl(F.dump());
  // One JSON object per line, each parseable and carrying the request id.
  size_t Lines = 0, Pos = 0;
  while (Pos < Jsonl.size()) {
    size_t Nl = Jsonl.find('\n', Pos);
    ASSERT_NE(std::string::npos, Nl);
    serve::Json L = serve::parseJson(Jsonl.substr(Pos, Nl - Pos), &Err);
    ASSERT_TRUE(Err.empty()) << Err;
    EXPECT_EQ(7, L.get("request").asInt());
    Pos = Nl + 1;
    ++Lines;
  }
  EXPECT_EQ(6u, Lines);
}

} // namespace
