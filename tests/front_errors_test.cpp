//===- tests/front_errors_test.cpp - golden diagnostics for bad .sharpie ------===//
//
// Part of sharpie. Walks tests/front_errors/*.sharpie; every file starts
// with a golden header
//
//   // expect: LINE:COL: MESSAGE
//
// and must fail to load with exactly that diagnostic. The same walk doubles
// as the sanitizer corpus (this source is rebuilt under ASan/UBSan by
// tests/CMakeLists.txt), and a prefix-truncation sweep checks that no
// chopped input can make the frontend throw instead of reporting.
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef SHARPIE_REPO_ROOT
#error "SHARPIE_REPO_ROOT must be defined by the build"
#endif

using namespace sharpie;
namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  EXPECT_TRUE(In.good()) << "cannot open " << P;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<fs::path> corpusFiles() {
  fs::path Dir = fs::path(SHARPIE_REPO_ROOT) / "tests" / "front_errors";
  std::vector<fs::path> Files;
  for (const auto &Entry : fs::directory_iterator(Dir))
    if (Entry.path().extension() == ".sharpie")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(FrontErrors, EveryCorpusFileFailsWithItsGoldenDiagnostic) {
  std::vector<fs::path> Files = corpusFiles();
  ASSERT_GE(Files.size(), 10u) << "negative corpus shrank";
  for (const fs::path &P : Files) {
    SCOPED_TRACE(P.filename().string());
    std::string Src = slurp(P);
    constexpr std::string_view Marker = "// expect: ";
    ASSERT_EQ(Src.rfind(Marker, 0), 0u)
        << P << " is missing its '// expect:' golden header";
    std::string Golden = Src.substr(Marker.size(), Src.find('\n') - Marker.size());

    logic::TermManager M;
    front::LoadResult R = front::loadProtocolFile(M, P.string());
    ASSERT_FALSE(R.ok()) << P << " unexpectedly parsed";
    const front::Diagnostic &D = *R.Error;
    std::string Actual = std::to_string(D.Line) + ":" + std::to_string(D.Col) +
                         ": " + D.Message;
    EXPECT_EQ(Actual, Golden);
    EXPECT_EQ(D.File, P.string());
    // render() carries the offending source line and a caret under the column.
    std::string Rendered = D.render();
    EXPECT_NE(Rendered.find("error: "), std::string::npos);
    EXPECT_NE(Rendered.find(D.SourceLine), std::string::npos);
    EXPECT_NE(Rendered.find('^'), std::string::npos);
  }
}

TEST(FrontErrors, MissingFileIsADiagnosticNotAThrow) {
  logic::TermManager M;
  front::LoadResult R =
      front::loadProtocolFile(M, "/nonexistent/never/there.sharpie");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error->Message.find("cannot open file"), std::string::npos);
}

// The small-fix satellite: no truncation of a valid protocol may escape as an
// exception - every prefix either loads or yields a Diagnostic.
TEST(FrontErrors, EveryPrefixOfAValidFileLoadsOrDiagnoses) {
  fs::path Good = fs::path(SHARPIE_REPO_ROOT) / "examples" / "protocols" /
                  "ticket_lock.sharpie";
  std::string Src = slurp(Good);
  ASSERT_FALSE(Src.empty());
  for (size_t Len = 0; Len <= Src.size(); ++Len) {
    logic::TermManager M;
    front::LoadResult R = front::loadProtocolString(
        M, Src.substr(0, Len), "truncated.sharpie");
    if (R.ok())
      EXPECT_TRUE(R.Bundle.has_value());
    else
      EXPECT_FALSE(R.Error->Message.empty()) << "empty diagnostic at " << Len;
  }
}

} // namespace
