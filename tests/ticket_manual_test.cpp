//===- tests/ticket_manual_test.cpp - Hand-written ticket lock invariant -------===//
//
// Part of sharpie. Checks the paper's ticket lock invariant (Sec. 2 /
// Fig. 6) through the concrete reduction path, independent of synthesis:
//
//   serv <= tick
//   /\ forall q >= 0:
//        #{t | m(t) <= serv /\ pc(t) = 2} + #{t | pc(t) = 3} <= 1
//        /\ #{t | m(t) <= serv /\ pc(t) = 2} + #{t | pc(t) = 3}
//             <= tick - serv
//        /\ #{t | m(t) = q} <= 1
//        /\ (q >= tick -> #{t | m(t) = q} <= 0)
//
// and that it implies mutual exclusion. Every obligation must reduce to an
// unsatisfiable ground formula.
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"
#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <gtest/gtest.h>

using namespace sharpie;
using logic::Sort;
using logic::Term;

namespace {

TEST(TicketManual, PaperInvariantIsInductive) {
  logic::TermManager M;
  protocols::ProtocolBundle B = protocols::makeTicketLock(M);
  sys::ParamSystem &S = *B.Sys;

  Term PC = M.mkVar("pc", Sort::Array);
  Term Mv = M.mkVar("m", Sort::Array);
  Term Tick = M.mkVar("tick", Sort::Int);
  Term Serv = M.mkVar("serv", Sort::Int);
  Term T = M.mkVar("inv_t", Sort::Tid);
  Term Q = M.mkVar("inv_q", Sort::Int);

  Term K0 = M.mkCard(T, M.mkAnd(M.mkLe(M.mkRead(Mv, T), Serv),
                                M.mkEq(M.mkRead(PC, T), M.mkInt(2))));
  Term K1 = M.mkCard(T, M.mkEq(M.mkRead(PC, T), M.mkInt(3)));
  Term K2 = M.mkCard(T, M.mkEq(M.mkRead(Mv, T), Q));

  Term Quantified = M.mkForall(
      {Q},
      M.mkImplies(
          M.mkGe(Q, M.mkInt(0)),
          M.mkAnd({M.mkLe(M.mkAdd(K0, K1), M.mkInt(1)),
                   M.mkLe(M.mkAdd(K0, K1), M.mkSub(Tick, Serv)),
                   M.mkLe(K2, M.mkInt(1)),
                   M.mkImplies(M.mkGe(Q, Tick), M.mkLe(K2, M.mkInt(0)))})));
  Term Inv = M.mkAnd({M.mkGe(Serv, M.mkInt(0)), M.mkLe(Serv, Tick),
                      Quantified});

  engine::ReduceOptions Opts;
  Opts.Card.Venn = true;
  std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
  for (const sys::Obligation &O : sys::safetyObligations(S, Inv)) {
    engine::ReduceResult R = engine::reduceToGround(
        M, O.Psi, Opts, Oracle.get(), S.externalCounters());
    std::unique_ptr<smt::SmtSolver> Check = smt::makeZ3Solver(M);
    Check->setTimeoutMs(60000);
    Check->add(R.Ground);
    EXPECT_EQ(Check->check(), smt::SatResult::Unsat)
        << O.Name << " (ground size " << logic::termSize(R.Ground) << ")";
  }
}

} // namespace
