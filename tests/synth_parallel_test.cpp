//===- tests/synth_parallel_test.cpp - Parallel-search determinism ------------===//
//
// Part of sharpie. The parallel set-tuple search must be a pure
// performance feature: for any worker count, the synthesized invariant
// (set bodies and atoms) must be the one the serial search finds, because
// results merge by rank and the per-tuple pipeline is deterministic. See
// DESIGN.md, "Parallel search & determinism".
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"
#include "logic/TermOps.h"
#include "obs/Export.h"
#include "protocols/Protocols.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace sharpie;
using namespace sharpie::protocols;

namespace {

struct RunOutput {
  bool Verified = false;
  std::vector<std::string> SetBodies;
  std::vector<std::string> Atoms;
  std::string Note;
  synth::SynthStats Stats;
};

/// Runs a bundle with the given worker count and renders the result to
/// strings, so runs over distinct TermManagers compare structurally.
RunOutput runWith(BundleFactory Make, unsigned NumWorkers) {
  logic::TermManager M;
  ProtocolBundle B = Make(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = NumWorkers;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  RunOutput Out;
  Out.Verified = R.Verified;
  for (logic::Term S : R.SetBodies)
    Out.SetBodies.push_back(logic::toString(S));
  for (logic::Term A : R.Atoms)
    Out.Atoms.push_back(logic::toString(A));
  Out.Note = R.Note;
  Out.Stats = R.Stats;
  return Out;
}

void expectIdentical(BundleFactory Make, const char *Name) {
  RunOutput Serial = runWith(Make, 1);
  RunOutput Par = runWith(Make, 4);
  ASSERT_TRUE(Serial.Verified) << Name << ": " << Serial.Note;
  ASSERT_TRUE(Par.Verified) << Name << ": " << Par.Note;
  EXPECT_EQ(Serial.SetBodies, Par.SetBodies) << Name;
  // The search clamps workers to the tuple count, so 4 is an upper bound
  // (ticket_mutex has a single coverage-satisfying tuple, for instance).
  EXPECT_GE(Par.Stats.NumWorkers, 1u) << Name;
  EXPECT_LE(Par.Stats.NumWorkers, 4u) << Name;
  EXPECT_EQ(Serial.Stats.NumWorkers, 1u) << Name;
  EXPECT_EQ(Serial.Atoms, Par.Atoms) << Name;
}

TEST(SynthParallel, TicketMutexIdenticalInvariant) {
  expectIdentical(makeTicketMutex, "ticket_mutex");
}

TEST(SynthParallel, TicketLockIdenticalInvariant) {
  expectIdentical(makeTicketLock, "ticket_lock");
}

TEST(SynthParallel, OneThirdIdenticalInvariant) {
  expectIdentical(makeOneThird, "one_third");
}

// The serial path with NumWorkers=1 must not report parallel machinery.
TEST(SynthParallel, SerialStatsStayHonest) {
  RunOutput Serial = runWith(makeTicketMutex, 1);
  ASSERT_TRUE(Serial.Verified) << Serial.Note;
  EXPECT_EQ(Serial.Stats.NumWorkers, 1u);
  EXPECT_DOUBLE_EQ(Serial.Stats.WorkerUtilization, 1.0);
  EXPECT_GT(Serial.Stats.TuplesTried, 0u);
}

// Oversubscription beyond the tuple count must clamp, not deadlock. The
// increment program has two candidate tuples (the first fails, the second
// verifies), so this genuinely runs multiple workers and exercises the
// rank merge; it is also the fast case the ThreadSanitizer ctest entry
// runs (tests/CMakeLists.txt).
TEST(SynthParallel, MoreWorkersThanTuples) {
  logic::TermManager M;
  ProtocolBundle B = makeIncrement(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = 64;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  EXPECT_TRUE(R.Verified) << R.Note;
  EXPECT_GE(R.Stats.NumWorkers, 2u);
  EXPECT_LE(R.Stats.NumWorkers, 64u);
}

// A tracer observing the parallel search: every worker emits into its own
// rank's buffer concurrently and the leveled log sink is hit from all of
// them, so this is the race surface the ThreadSanitizer ctest entry runs
// (tests/CMakeLists.txt). Also pins the rank scheme -- driver on rank 0,
// worker W on rank W+1 -- and that the merged metrics survive the fold.
TEST(SynthParallel, TracerFourWorkers) {
  logic::TermManager M;
  ProtocolBundle B = makeIncrement(M);
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  Cfg.Level = obs::LogLevel::Debug;
  std::FILE *Sink = std::fopen("/dev/null", "w");
  ASSERT_NE(Sink, nullptr);
  Cfg.LogStream = Sink;
  obs::Tracer T(Cfg);

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = 4;
  Opts.Trace = &T;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  EXPECT_TRUE(R.Verified) << R.Note;

  std::set<unsigned> Ranks;
  for (const obs::Event &E : T.mergedEvents())
    Ranks.insert(E.Worker);
  EXPECT_TRUE(Ranks.count(0)) << "driver events missing from rank 0";
  EXPECT_GE(Ranks.size(), 2u) << "no worker rank emitted events";
  for (unsigned W : Ranks)
    EXPECT_LE(W, Opts.NumWorkers) << "rank beyond W+1 scheme";

  const int64_t *Checks = R.Stats.Metrics.counter("smt_checks");
  ASSERT_NE(Checks, nullptr);
  EXPECT_GT(*Checks, 0);
  EXPECT_NE(R.Stats.Metrics.hist("smt_ms"), nullptr);
  std::fclose(Sink);
}

// A caller-held ReduceCache handed to the 4-worker search flips into
// shared mode: all workers consult it under a mutex, entries live in the
// cache's private manager, and a re-verification run hits the reductions
// the first run's workers stored (each worker's world is rebuilt from
// scratch, so without the shared cache the second run would re-reduce
// everything). Results must stay byte-identical across runs -- cache-hit
// grounds differ from fresh ones only in re-skolemized witness names,
// which the semantic fixpoint cannot observe. This test doubles as the
// TSan entry for the shared-cache locking (tests/CMakeLists.txt).
TEST(SynthParallel, SharedReduceCacheHitsAcrossRunsFourWorkers) {
  logic::TermManager M;
  ProtocolBundle B = makeIncrement(M);
  engine::ReduceCache Shared;
  auto Run = [&] {
    synth::SynthOptions Opts;
    Opts.Shape = B.Shape;
    Opts.QGuard = B.QGuard;
    Opts.Explicit = B.Explicit;
    Opts.NumWorkers = 4;
    Opts.ReuseReduceCache = &Shared;
    synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
    RunOutput Out;
    Out.Verified = R.Verified;
    for (logic::Term S : R.SetBodies)
      Out.SetBodies.push_back(logic::toString(S));
    for (logic::Term A : R.Atoms)
      Out.Atoms.push_back(logic::toString(A));
    Out.Note = R.Note;
    Out.Stats = R.Stats;
    return Out;
  };

  RunOutput R1 = Run();
  ASSERT_TRUE(R1.Verified) << R1.Note;
  EXPECT_EQ(R1.Stats.CacheHits, 0u) << "single-run hits must be impossible";
  EXPECT_GT(R1.Stats.CacheMisses, 0u);

  RunOutput R2 = Run();
  ASSERT_TRUE(R2.Verified) << R2.Note;
  EXPECT_GT(R2.Stats.CacheHits, 0u)
      << "second 4-worker run must reuse the first run's reductions";
  EXPECT_LT(R2.Stats.CacheMisses, R1.Stats.CacheMisses);
  EXPECT_EQ(R1.SetBodies, R2.SetBodies);
  EXPECT_EQ(R1.Atoms, R2.Atoms);
}

} // namespace
