//===- tests/resil_unknown_test.cpp - Unknown propagation & timeout parity -----===//
//
// Part of sharpie. Two soundness-critical properties of the SMT layer
// that the resilience work (resil/) leans on:
//
//   * Unknown propagation: SatResult::Unknown must never behave as
//     Unsat, and checkValid must map it to Validity::Unknown, never
//     Valid -- a candidate invariant kept on an Unknown, or a safety
//     check "passed" by one, would be a soundness hole. Pinned at the
//     solver level here and at the whole-pipeline level via a forced
//     unknown storm.
//
//   * Timeout parity: both back ends honor setTimeoutMs and answer
//     Unknown on a deliberately hard query within ~2x the configured
//     timeout (satellite of ISSUE 4): Z3 on a quantified nonlinear
//     integer-sqrt formula its MBQI cannot finish, MiniSolver on a
//     pigeonhole instance far beyond its conflict horizon.
//
//===----------------------------------------------------------------------===//

#include "logic/TermOps.h"
#include "protocols/Protocols.h"
#include "resil/Resil.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

using namespace sharpie;
using namespace sharpie::logic;
using smt::SatResult;
using smt::Validity;

namespace {

double checkMs(smt::SmtSolver &S, SatResult &R) {
  auto T0 = std::chrono::steady_clock::now();
  R = S.check();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// forall x >= 0. exists y >= 0. y*y <= x < (y+1)*(y+1) -- true over the
/// integers, but proving (or modeling) it needs the integer square root,
/// which is beyond quantified nonlinear instantiation: Z3 answers Unknown,
/// either quickly ("incomplete (quantifiers)") or at the timeout
/// ("canceled"). Both are acceptable; an actual Sat/Unsat would be
/// astonishing.
Term hardQuantifiedQuery(TermManager &M) {
  Term X = M.mkVar("hx", Sort::Int);
  Term Y = M.mkVar("hy", Sort::Int);
  Term Zero = M.mkInt(0);
  Term YSq = M.mkMul(Y, Y);
  Term Y1 = M.mkAdd(Y, M.mkInt(1));
  Term Body = M.mkAnd({M.mkGe(Y, Zero), M.mkLe(YSq, X),
                       M.mkLt(X, M.mkMul(Y1, Y1))});
  return M.mkForall({X}, M.mkImplies(M.mkGe(X, Zero),
                                     M.mkExists({Y}, Body)));
}

/// Unsat pigeonhole instance PHP(Pigeons, Pigeons-1) over pure Boolean
/// variables: every pigeon gets a hole, no hole holds two pigeons. In
/// MiniSolver's fragment but exponentially hard for its search at this
/// size, so a soft deadline is the only way out.
Term pigeonhole(TermManager &M, unsigned Pigeons) {
  unsigned Holes = Pigeons - 1;
  std::vector<std::vector<Term>> P(Pigeons);
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I].push_back(M.mkVar("php_" + std::to_string(I) + "_" +
                                 std::to_string(J),
                             Sort::Bool));
  std::vector<Term> Cs;
  for (unsigned I = 0; I < Pigeons; ++I)
    Cs.push_back(M.mkOr(P[I]));
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I = 0; I < Pigeons; ++I)
      for (unsigned K = I + 1; K < Pigeons; ++K)
        Cs.push_back(M.mkOr(M.mkNot(P[I][J]), M.mkNot(P[K][J])));
  return M.mkAnd(std::move(Cs));
}

// -- Unknown propagation ------------------------------------------------------

TEST(UnknownPropagation, MiniSolverAnswersUnknownOnQuantifiers) {
  TermManager M;
  Term A = M.mkVar("arr", Sort::Array);
  Term T = M.mkVar("t", Sort::Tid);
  Term Q = M.mkForall({T}, M.mkGe(M.mkRead(A, T), M.mkInt(0)));
  std::unique_ptr<smt::SmtSolver> Mini = smt::makeMiniSolver(M);
  Mini->add(Q);
  EXPECT_EQ(Mini->check(), SatResult::Unknown);
  std::string Reason = Mini->reasonUnknown();
  EXPECT_FALSE(Reason.empty());
  EXPECT_EQ(resil::classifyUnknownReason(Reason),
            resil::FailureClass::Incomplete)
      << Reason;
}

TEST(UnknownPropagation, CheckValidMapsUnknownToUnknownNeverValid) {
  TermManager M;
  Term A = M.mkVar("arr", Sort::Array);
  Term T = M.mkVar("t", Sort::Tid);
  Term Q = M.mkForall({T}, M.mkGe(M.mkRead(A, T), M.mkInt(0)));
  std::unique_ptr<smt::SmtSolver> Mini = smt::makeMiniSolver(M);
  EXPECT_EQ(smt::checkValid(*Mini, M, Q), Validity::Unknown);
  // The push/pop scoping around the Unknown must not wedge the solver: a
  // decidable query on the same instance still gets a real answer.
  Mini->add(M.mkGe(M.mkRead(A, T), M.mkInt(1)));
  EXPECT_EQ(smt::checkValid(*Mini, M, M.mkGe(M.mkRead(A, T), M.mkInt(0))),
            Validity::Valid);
}

TEST(UnknownPropagation, ReasonIsClearedBetweenChecks) {
  TermManager M;
  Term A = M.mkVar("arr", Sort::Array);
  Term T = M.mkVar("t", Sort::Tid);
  std::unique_ptr<smt::SmtSolver> Mini = smt::makeMiniSolver(M);
  Mini->push();
  Mini->add(M.mkForall({T}, M.mkGe(M.mkRead(A, T), M.mkInt(0))));
  ASSERT_EQ(Mini->check(), SatResult::Unknown);
  ASSERT_FALSE(Mini->reasonUnknown().empty());
  Mini->pop();
  Mini->add(M.mkGe(M.mkRead(A, T), M.mkInt(0)));
  ASSERT_EQ(Mini->check(), SatResult::Sat);
  EXPECT_TRUE(Mini->reasonUnknown().empty())
      << "stale reason from the earlier Unknown";
}

// -- Per-check timeout parity -------------------------------------------------

TEST(TimeoutParity, Z3HardQuantifiedQueryUnknownWithinTwiceTimeout) {
  TermManager M;
  std::unique_ptr<smt::SmtSolver> Z3 = smt::makeZ3Solver(M);
  Z3->setTimeoutMs(500);
  Z3->add(hardQuantifiedQuery(M));
  SatResult R;
  double Ms = checkMs(*Z3, R);
  EXPECT_EQ(R, SatResult::Unknown);
  // ~2x the configured timeout, plus scheduling slack for loaded CI.
  EXPECT_LT(Ms, 2 * 500 + 500) << "Z3 overran its per-check deadline";
}

TEST(TimeoutParity, MiniSolverHardGroundQueryUnknownWithinTwiceTimeout) {
  TermManager M;
  std::unique_ptr<smt::SmtSolver> Mini = smt::makeMiniSolver(M);
  Mini->setTimeoutMs(200);
  Mini->add(pigeonhole(M, 11));
  SatResult R;
  double Ms = checkMs(*Mini, R);
  EXPECT_EQ(R, SatResult::Unknown);
  EXPECT_LT(Ms, 2 * 200 + 500) << "MiniSolver overran its soft deadline";
  EXPECT_EQ(resil::classifyUnknownReason(Mini->reasonUnknown()),
            resil::FailureClass::Timeout)
      << Mini->reasonUnknown();
}

TEST(TimeoutParity, Z3TimeoutZeroMeansDisabledNotInstant) {
  TermManager M;
  Term X = M.mkVar("x", Sort::Int);
  std::unique_ptr<smt::SmtSolver> Z3 = smt::makeZ3Solver(M);
  Z3->setTimeoutMs(0); // Contract: 0 disables; Z3's raw param means 0ms.
  Z3->add(M.mkGe(X, M.mkInt(5)));
  EXPECT_EQ(Z3->check(), SatResult::Sat);
}

TEST(TimeoutParity, SupervisedHardQueryFailsOverAndStaysWithinBudget) {
  TermManager M;
  resil::ResilCounters Sink;
  resil::SupervisionOptions Opts;
  resil::SupervisedSolver S(
      smt::makeZ3Solver(M), [&M] { return smt::makeMiniSolver(M); }, Opts,
      &Sink, /*Faults=*/nullptr, "smt_check", /*TB=*/nullptr,
      std::chrono::steady_clock::time_point::max());
  S.setTimeoutMs(300);
  S.add(hardQuantifiedQuery(M));
  SatResult R;
  double Ms = checkMs(S, R);
  // Neither back end can decide this; the wrapper must stop trying after
  // base slice + one backoff retry + fallback, never hang, and never
  // fabricate an answer.
  EXPECT_EQ(R, SatResult::Unknown);
  EXPECT_NE(S.lastFailure(), resil::FailureClass::None);
  EXPECT_EQ(Sink.Fallbacks, 1u);
  EXPECT_LT(Ms, 300 + 2 * 300 + 300 + 1000)
      << "supervision overran retry + backoff + fallback";
}

// -- Whole-pipeline pin: a forced unknown storm can never verify --------------

TEST(UnknownPropagation, SynthesisUnderUnknownStormIsNeverVerified) {
  using namespace sharpie::protocols;
  logic::TermManager M;
  ProtocolBundle B = makeIncrement(M);
  auto Plan = resil::FaultPlan::parse("seed=9;smt_check:unknown;reduce:unknown");
  ASSERT_TRUE(Plan.has_value());
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = 1;
  Opts.Faults = &*Plan;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  EXPECT_FALSE(R.Verified)
      << "verified with every SMT answer forced to Unknown: some caller "
         "treats Unknown as Unsat/Valid";
  EXPECT_FALSE(R.Cex.has_value());
  EXPECT_TRUE(R.Inconclusive);
}

} // namespace
