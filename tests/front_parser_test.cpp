//===- tests/front_parser_test.cpp - .sharpie parser + lowering units ---------===//
//
// Part of sharpie. Positive tests of the protocol language: lowering is
// checked *structurally* - the expected terms are built by hand in the
// same TermManager, so hash-consing makes equality exact pointer
// equality, with no dependence on printer output.
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie;
using logic::Sort;
using logic::Term;
using logic::TermManager;

namespace {

front::FrontBundle mustLoad(TermManager &M, const std::string &Src) {
  front::LoadResult R = front::loadProtocolString(M, Src);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->render() : "");
  if (!R.ok())
    throw std::runtime_error("load failed");
  return std::move(*R.Bundle);
}

TEST(FrontParser, IncrementLowersToTheExactTerms) {
  TermManager M;
  front::FrontBundle B = mustLoad(M, R"(
    protocol increment {
      global a;
      local pc;
      init: a == 0 && forall t. pc[t] == 1;
      safe: forall t. pc[t] >= 2 ==> a > 0;
      transition inc {
        guard: pc[self] == 1;
        a := a + 1;
        pc[self] := 2;
      }
      template { sets: 1; }
      check { threads: 3; start { pc := 1; } }
    }
  )");
  sys::ParamSystem &S = *B.Sys;
  EXPECT_EQ(S.name(), "increment");
  EXPECT_EQ(S.mode(), sys::Composition::Async);
  ASSERT_EQ(S.globals().size(), 1u);
  ASSERT_EQ(S.locals().size(), 1u);
  Term A = S.globals()[0], PC = S.locals()[0];
  EXPECT_EQ(A->name(), "a");
  EXPECT_EQ(PC->name(), "pc");

  Term T = M.mkVar("t", Sort::Tid);
  EXPECT_EQ(S.init(),
            M.mkAnd(M.mkEq(A, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  EXPECT_EQ(S.safe(),
            M.mkForall({T}, M.mkImplies(M.mkGe(M.mkRead(PC, T), M.mkInt(2)),
                                        M.mkGt(A, M.mkInt(0)))));

  ASSERT_EQ(S.transitions().size(), 1u);
  const sys::Transition &Inc = S.transitions()[0];
  EXPECT_EQ(Inc.Name, "inc");
  EXPECT_EQ(Inc.Guard, M.mkEq(S.my(PC), M.mkInt(1)));
  EXPECT_EQ(Inc.GlobalUpd.at(A), M.mkAdd(A, M.mkInt(1)));
  EXPECT_EQ(Inc.LocalUpd.at(PC), M.mkInt(2));

  EXPECT_EQ(B.Shape.NumSets, 1u);
  EXPECT_TRUE(B.Shape.Quantifiers.empty());
  EXPECT_TRUE(B.QGuard.isNull());
  EXPECT_EQ(B.Explicit.NumThreads, 3);
  EXPECT_TRUE(B.ExpectSafe);
  EXPECT_FALSE(B.NeedsVenn);

  // The start block builds one uniform initial state.
  ASSERT_TRUE(S.CustomInit);
  std::vector<sys::ParamSystem::State> Init = S.CustomInit(4);
  ASSERT_EQ(Init.size(), 1u);
  EXPECT_EQ(Init[0].DomainSize, 4);
  EXPECT_EQ(Init[0].Scalars.at(A), 0);
  EXPECT_EQ(Init[0].Arrays.at(PC), (std::vector<int64_t>{1, 1, 1, 1}));
}

TEST(FrontParser, CardGuardsChoicesAndWrites) {
  TermManager M;
  front::FrontBundle B = mustLoad(M, R"(
    protocol gc_like {
      global mono;
      local color;
      init: mono == 1 && forall t. color[t] == 0;
      safe: mono == 1;
      transition write {
        guard: #{u | color[u] >= 2} == 0;
        choice addr : tid;
        choice v : int;
        color[addr] := ite(color[addr] == 0, v, color[addr]);
      }
      check { choice_range: 0 .. 2; }
    }
  )");
  sys::ParamSystem &S = *B.Sys;
  Term Mono = S.globals()[0], Color = S.locals()[0];
  const sys::Transition &W = S.transitions()[0];
  ASSERT_EQ(W.TidChoices.size(), 1u);
  ASSERT_EQ(W.Choices.size(), 1u);
  Term Addr = W.TidChoices[0], V = W.Choices[0];

  Term U = M.mkVar("u", Sort::Tid);
  EXPECT_EQ(W.Guard,
            M.mkEq(M.mkCard(U, M.mkGe(M.mkRead(Color, U), M.mkInt(2))),
                   M.mkInt(0)));
  ASSERT_EQ(W.Writes.size(), 1u);
  EXPECT_EQ(W.Writes[0].Arr, Color);
  EXPECT_EQ(W.Writes[0].Idx, Addr);
  EXPECT_EQ(W.Writes[0].Val,
            M.mkIte(M.mkEq(M.mkRead(Color, Addr), M.mkInt(0)), V,
                    M.mkRead(Color, Addr)));
  EXPECT_EQ(S.ChoiceLo, 0);
  EXPECT_EQ(S.ChoiceHi, 2);
  (void)Mono;
}

TEST(FrontParser, SyncRoundsLowerToPrimedRelations) {
  TermManager M;
  front::FrontBundle B = mustLoad(M, R"(
    protocol lockstep sync {
      global g;
      local x;
      init: g == 0 && forall t. x[t] == 0;
      safe: forall t. x[t] >= 0;
      round step {
        relation: x'[self] == x[self] + 1;
        g := g + 1;
      }
    }
  )");
  sys::ParamSystem &S = *B.Sys;
  EXPECT_EQ(S.mode(), sys::Composition::Sync);
  Term G = S.globals()[0], X = S.locals()[0];
  const sys::Transition &R = S.transitions()[0];
  ASSERT_FALSE(R.SyncRelation.isNull());
  EXPECT_EQ(R.SyncRelation,
            M.mkEq(M.mkRead(S.post(X), S.self()),
                   M.mkAdd(M.mkRead(X, S.self()), M.mkInt(1))));
  EXPECT_EQ(R.GlobalUpd.at(G), M.mkAdd(G, M.mkInt(1)));
}

TEST(FrontParser, TemplateBlockBuildsShapeAndQGuard) {
  TermManager M;
  front::FrontBundle B = mustLoad(M, R"(
    protocol shaped {
      global n;
      local lv;
      init: forall t. lv[t] == 0;
      safe: true;
      template {
        sets: 2;
        forall q : int;
        forall p;
        guard: q >= 0 && q <= n - 1;
      }
    }
  )");
  EXPECT_EQ(B.Shape.NumSets, 2u);
  ASSERT_EQ(B.Shape.Quantifiers.size(), 2u);
  EXPECT_EQ(B.Shape.Quantifiers[0], Sort::Int);
  EXPECT_EQ(B.Shape.Quantifiers[1], Sort::Tid); // Default binder sort.
  synth::Formals F = synth::makeFormals(M, B.Shape);
  Term N = B.Sys->globals()[0];
  EXPECT_EQ(B.QGuard,
            M.mkAnd(M.mkGe(F.Q[0], M.mkInt(0)),
                    M.mkLe(F.Q[0], M.mkSub(N, M.mkInt(1)))));
}

TEST(FrontParser, SizeVarAndMetadata) {
  TermManager M;
  front::FrontBundle B = mustLoad(M, R"(
    protocol sized {
      size n;
      local lv;
      init: n >= 2 && forall t. lv[t] == 0;
      safe: #{t | lv[t] == n - 1} <= 1;
      transition adv {
        guard: lv[self] < n - 1;
        lv[self] := lv[self] + 1;
      }
      check { threads: 4; start { lv := 0; } }
      venn;
      property "top level is exclusive";
      expect unsafe;
    }
  )");
  sys::ParamSystem &S = *B.Sys;
  ASSERT_TRUE(S.sizeVar().has_value());
  EXPECT_EQ((*S.sizeVar())->name(), "n");
  EXPECT_TRUE(B.NeedsVenn);
  EXPECT_FALSE(B.ExpectSafe);
  EXPECT_EQ(B.Property, "top level is exclusive");
  // The size variable defaults to the instance size in the start state.
  std::vector<sys::ParamSystem::State> Init = S.CustomInit(5);
  EXPECT_EQ(Init[0].Scalars.at(*S.sizeVar()), 5);
}

TEST(FrontParser, QuantifierBodyExtendsRight) {
  TermManager M;
  front::FrontBundle B = mustLoad(M, R"(
    protocol assoc {
      global a;
      local pc;
      init: a == 0 && forall t. pc[t] == 1 && a == 0;
      safe: true;
    }
  )");
  Term A = B.Sys->globals()[0], PC = B.Sys->locals()[0];
  Term T = M.mkVar("t", Sort::Tid);
  // The quantifier body swallows the trailing conjunct.
  EXPECT_EQ(B.Sys->init(),
            M.mkAnd(M.mkEq(A, M.mkInt(0)),
                    M.mkForall({T}, M.mkAnd(M.mkEq(M.mkRead(PC, T),
                                                   M.mkInt(1)),
                                            M.mkEq(A, M.mkInt(0))))));
}

} // namespace
