//===- tests/simplex_test.cpp - Simplex and branch-and-bound tests -------------===//
//
// Part of sharpie. Unit and property tests for the MiniSolver's simplex
// core: hand-picked feasibility cases plus randomized cross-validation
// against brute-force enumeration on a bounded cube.
//
//===----------------------------------------------------------------------===//

#include "smt/Simplex.h"

#include <gtest/gtest.h>
#include <random>

using namespace sharpie::smt;

namespace {

LinearConstraint le(std::map<unsigned, int64_t> Cs, int64_t Rhs) {
  LinearConstraint C;
  for (auto &[V, K] : Cs)
    C.Coeffs[V] = Rational(K);
  C.Rhs = Rational(Rhs);
  return C;
}

LinearConstraint eq(std::map<unsigned, int64_t> Cs, int64_t Rhs) {
  LinearConstraint C = le(std::move(Cs), Rhs);
  C.IsEquality = true;
  return C;
}

TEST(Simplex, TrivialFeasible) {
  // x <= 5, -x <= -3  (i.e. 3 <= x <= 5).
  std::vector<int64_t> Model;
  auto R = checkIntegerFeasible(1, {le({{0, 1}}, 5), le({{0, -1}}, -3)},
                                &Model);
  ASSERT_EQ(R, SimplexResult::Feasible);
  EXPECT_GE(Model[0], 3);
  EXPECT_LE(Model[0], 5);
}

TEST(Simplex, TrivialInfeasible) {
  // x <= 2 and x >= 3.
  auto R = checkIntegerFeasible(1, {le({{0, 1}}, 2), le({{0, -1}}, -3)});
  EXPECT_EQ(R, SimplexResult::Infeasible);
}

TEST(Simplex, RationalFeasibleIntegerInfeasible) {
  // 2x = 1: rational solution 1/2, no integer solution.
  EXPECT_EQ(checkRationalFeasible(1, {eq({{0, 2}}, 1)}),
            SimplexResult::Feasible);
  EXPECT_EQ(checkIntegerFeasible(1, {eq({{0, 2}}, 1)}),
            SimplexResult::Infeasible);
}

TEST(Simplex, EqualityChain) {
  // x + y = 10, x - y = 4  =>  x = 7, y = 3.
  std::vector<int64_t> Model;
  auto R = checkIntegerFeasible(
      2, {eq({{0, 1}, {1, 1}}, 10), eq({{0, 1}, {1, -1}}, 4)}, &Model);
  ASSERT_EQ(R, SimplexResult::Feasible);
  EXPECT_EQ(Model[0], 7);
  EXPECT_EQ(Model[1], 3);
}

TEST(Simplex, BranchAndBoundSplits) {
  // 3x + 3y = 7 has rational solutions but no integer ones.
  EXPECT_EQ(checkIntegerFeasible(2, {eq({{0, 3}, {1, 3}}, 7)}),
            SimplexResult::Infeasible);
}

TEST(Simplex, PigeonholeStyle) {
  // a + b + c = 7, each in [0,2]: infeasible (max 6).
  std::vector<LinearConstraint> Cs{eq({{0, 1}, {1, 1}, {2, 1}}, 7)};
  for (unsigned V = 0; V < 3; ++V) {
    Cs.push_back(le({{V, 1}}, 2));
    Cs.push_back(le({{V, -1}}, 0));
  }
  EXPECT_EQ(checkIntegerFeasible(3, Cs), SimplexResult::Infeasible);
}

/// Property: against brute force on the cube [-4,4]^3. If brute force
/// finds a point, simplex must not claim Infeasible; if simplex claims
/// Infeasible, brute force must find nothing. (Feasible answers may use
/// points outside the cube, so only these two directions are checkable.)
class SimplexRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplexRandomTest, AgreesWithBruteForce) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  std::uniform_int_distribution<int> Coef(-3, 3), Rhs(-6, 6), NumC(2, 6);
  std::uniform_int_distribution<int> IsEq(0, 4);

  std::vector<LinearConstraint> Cs;
  int N = NumC(Rng);
  for (int I = 0; I < N; ++I) {
    LinearConstraint C;
    for (unsigned V = 0; V < 3; ++V) {
      int K = Coef(Rng);
      if (K != 0)
        C.Coeffs[V] = Rational(K);
    }
    C.Rhs = Rational(Rhs(Rng));
    C.IsEquality = IsEq(Rng) == 0;
    Cs.push_back(std::move(C));
  }
  // Bound all variables into the cube so Feasible results are checkable
  // against brute force in both directions.
  for (unsigned V = 0; V < 3; ++V) {
    Cs.push_back(le({{V, 1}}, 4));
    Cs.push_back(le({{V, -1}}, 4));
  }

  bool BruteFeasible = false;
  for (int64_t X = -4; X <= 4 && !BruteFeasible; ++X)
    for (int64_t Y = -4; Y <= 4 && !BruteFeasible; ++Y)
      for (int64_t Z = -4; Z <= 4 && !BruteFeasible; ++Z) {
        bool Ok = true;
        for (const LinearConstraint &C : Cs) {
          Rational Sum(0);
          auto Get = [&](unsigned V) {
            auto It = C.Coeffs.find(V);
            return It == C.Coeffs.end() ? Rational(0) : It->second;
          };
          Sum = Get(0) * Rational(X) + Get(1) * Rational(Y) +
                Get(2) * Rational(Z);
          if (C.IsEquality ? !(Sum == C.Rhs) : !(Sum <= C.Rhs)) {
            Ok = false;
            break;
          }
        }
        BruteFeasible |= Ok;
      }

  std::vector<int64_t> Model;
  SimplexResult R = checkIntegerFeasible(3, Cs, &Model);
  ASSERT_NE(R, SimplexResult::Unknown);
  EXPECT_EQ(R == SimplexResult::Feasible, BruteFeasible)
      << "simplex and brute force disagree (seed " << GetParam() << ")";
  if (R == SimplexResult::Feasible) {
    // The model must satisfy every constraint.
    for (const LinearConstraint &C : Cs) {
      Rational Sum(0);
      for (auto &[V, K] : C.Coeffs)
        Sum = Sum + K * Rational(Model[V]);
      if (C.IsEquality)
        EXPECT_TRUE(Sum == C.Rhs);
      else
        EXPECT_TRUE(Sum <= C.Rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range(0u, 120u));

} // namespace
