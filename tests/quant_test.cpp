//===- tests/quant_test.cpp - Skolemization / expansion tests ------------------===//
//
// Part of sharpie. Unit tests for the instantiation layer of quant/Quant.h
// and its soundness contract (expansion may only weaken; skolemization is
// equisatisfiable outside universal scopes).
//
//===----------------------------------------------------------------------===//

#include "quant/Quant.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::logic;

namespace {

class QuantTest : public ::testing::Test {
protected:
  TermManager M;
  Term F = M.mkVar("f", Sort::Array);
  Term T = M.mkVar("t", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);
  Term X = M.mkVar("x", Sort::Int);
};

TEST_F(QuantTest, SkolemizeTopLevelExists) {
  Term Phi = M.mkExists({T}, M.mkEq(M.mkRead(F, T), M.mkInt(2)));
  quant::SkolemResult R = quant::skolemize(M, Phi);
  EXPECT_TRUE(R.Complete);
  ASSERT_EQ(R.Skolems.size(), 1u);
  EXPECT_FALSE(containsKind(R.Formula, Kind::Exists));
  // Body instantiated at the fresh constant.
  Subst S;
  S[T] = R.Skolems[0];
  EXPECT_EQ(R.Formula,
            substitute(M, M.mkEq(M.mkRead(F, T), M.mkInt(2)), S));
}

TEST_F(QuantTest, NegatedForallBecomesSkolemizedWitness) {
  Term Phi = M.mkNot(M.mkForall({T}, M.mkEq(M.mkRead(F, T), M.mkInt(1))));
  quant::SkolemResult R = quant::skolemize(M, Phi);
  EXPECT_TRUE(R.Complete);
  EXPECT_EQ(R.Skolems.size(), 1u);
  EXPECT_FALSE(containsKind(R.Formula, Kind::Forall));
}

TEST_F(QuantTest, ExistsUnderForallFlagsIncomplete) {
  Term Phi = M.mkForall(
      {T}, M.mkExists({U}, M.mkEq(M.mkRead(F, T), M.mkRead(F, U))));
  quant::SkolemResult R = quant::skolemize(M, Phi);
  EXPECT_FALSE(R.Complete);
}

TEST_F(QuantTest, ExpansionEnumeratesTidTerms) {
  Term Phi = M.mkForall({T}, M.mkGe(M.mkRead(F, T), M.mkInt(0)));
  Term C1 = M.mkVar("c1", Sort::Tid), C2 = M.mkVar("c2", Sort::Tid);
  quant::ExpandResult R = quant::expandForalls(M, Phi, {C1, C2}, {});
  EXPECT_TRUE(R.Complete);
  EXPECT_EQ(R.NumInstances, 2u);
  EXPECT_EQ(R.Formula, M.mkAnd(M.mkGe(M.mkRead(F, C1), M.mkInt(0)),
                               M.mkGe(M.mkRead(F, C2), M.mkInt(0))));
}

TEST_F(QuantTest, MultiBinderExpansionIsProduct) {
  Term Phi = M.mkForall({T, U}, M.mkOr(M.mkEq(T, U),
                                       M.mkNe(M.mkRead(F, T),
                                              M.mkRead(F, U))));
  Term C1 = M.mkVar("c1", Sort::Tid), C2 = M.mkVar("c2", Sort::Tid);
  quant::ExpandResult R = quant::expandForalls(M, Phi, {C1, C2}, {});
  EXPECT_EQ(R.NumInstances, 4u);
}

TEST_F(QuantTest, BudgetOverrunWeakensToTrue) {
  Term Phi = M.mkForall({T}, M.mkGe(M.mkRead(F, T), M.mkInt(0)));
  quant::ExpandOptions Opts;
  Opts.MaxInstantiations = 1;
  Term C1 = M.mkVar("c1", Sort::Tid), C2 = M.mkVar("c2", Sort::Tid);
  quant::ExpandResult R =
      quant::expandForalls(M, Phi, {C1, C2}, {}, Opts);
  EXPECT_FALSE(R.Complete);
  EXPECT_EQ(R.Formula, M.mkTrue());
}

TEST_F(QuantTest, IntIndexTermsCollectReadsConstsAndOffsets) {
  Term N = M.mkVar("n", Sort::Int);
  Term Phi = M.mkAnd(M.mkEq(M.mkRead(F, T), M.mkSub(N, M.mkInt(1))),
                     M.mkGe(N, M.mkInt(2)));
  std::set<Term> Terms = quant::intIndexTerms(Phi);
  EXPECT_TRUE(Terms.count(M.mkSub(N, M.mkInt(1))));
  EXPECT_TRUE(Terms.count(M.mkRead(F, T)));
  EXPECT_TRUE(Terms.count(M.mkInt(2)));
  // Bare variables are excluded by design.
  EXPECT_FALSE(Terms.count(N));
}

TEST_F(QuantTest, TidIndexTermsAreFreeTidVars) {
  Term Phi = M.mkAnd(M.mkEq(T, U),
                     M.mkForall({T}, M.mkGe(M.mkRead(F, T), M.mkInt(0))));
  std::set<Term> Terms = quant::tidIndexTerms(Phi);
  EXPECT_TRUE(Terms.count(T)); // Free occurrence in the equality.
  EXPECT_TRUE(Terms.count(U));
  EXPECT_EQ(Terms.size(), 2u);
}

} // namespace
