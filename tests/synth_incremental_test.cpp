//===- tests/synth_incremental_test.cpp - Incremental/monolithic parity -------===//
//
// Part of sharpie. The incremental assumption-based Houdini (the default,
// SynthOptions::Incremental) must be a pure performance feature: on every
// bundled protocol, all three solving modes have to produce exactly the
// same verdict and rendered invariant (set bodies + atoms):
//
//   eager        --no-incremental: monolithic re-assertion per check,
//                full reduction up front;
//   coarse-lazy  incremental + --no-refine: relevancy-filtered lazy
//                reduction, surviving models escalate whole clauses;
//   CEGAR        incremental default: partitioned full reduction with a
//                deferred-instance manifest, surviving models assert only
//                the manifest entries they violate (SynthOptions::Refine).
//
// The suite enumerates examples/protocols/*.sharpie at runtime so a newly
// added protocol joins the parity claim automatically; ticket_lock runs
// with the paper's pinned template (the full search costs ~85s across the
// modes, and the unpinned A/B lives in tools/sweep.sh --bench-pr10),
// every other protocol runs the full search.
//
// Why parity is not an accident (and what a failure here means): the
// merged per-tuple context reaches the *greatest* inductive subset of the
// candidate atoms, which is unique, so the drop order -- one refuted atom
// per clause sweep monolithically, every implicated atom per model
// incrementally -- cannot change the fixpoint; and a CEGAR check only
// returns Sat once every selected clause's remaining manifest entries
// evaluate true in the model, i.e. once the model satisfies the *full*
// reduction (core AND manifest == unpartitioned reduction by
// construction). A diff here means one of the loops dropped an atom it
// could not justify (or kept one it had refuted), i.e. a soundness bug,
// not a tuning regression.
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"
#include "logic/TermOps.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#ifndef SHARPIE_REPO_ROOT
#error "SHARPIE_REPO_ROOT must be defined by the build"
#endif

using namespace sharpie;
using logic::Sort;
using logic::Term;
using logic::TermManager;

namespace {

std::string protoDir() {
  return std::string(SHARPIE_REPO_ROOT) + "/examples/protocols";
}

/// Everything one mode produced, rendered to strings so runs over
/// distinct TermManagers compare structurally.
struct ModeOutput {
  bool Verified = false;
  bool Inconclusive = false;
  bool HasCex = false;
  std::vector<std::string> SetBodies;
  std::vector<std::string> Atoms;
  unsigned SmtChecks = 0;
  std::string Note;
};

/// The paper's ticket-lock template (Fig. 1): s1 = m(t) <= serv /\
/// pc(t) = 2, s2 = pc(t) = 3, s3 = m(t) = q. Concretized per manager.
std::vector<Term> ticketBodies(TermManager &M,
                               const synth::ShapeTemplate &Shape) {
  synth::Formals F = synth::formalsFor(M, Shape);
  Term PC = M.mkVar("pc", Sort::Array);
  Term Mv = M.mkVar("m", Sort::Array);
  Term Serv = M.mkVar("serv", Sort::Int);
  Term T = F.BoundVar;
  return {M.mkAnd(M.mkLe(M.mkRead(Mv, T), Serv),
                  M.mkEq(M.mkRead(PC, T), M.mkInt(2))),
          M.mkEq(M.mkRead(PC, T), M.mkInt(3)),
          M.mkEq(M.mkRead(Mv, T), F.Q[0])};
}

ModeOutput runMode(const std::string &Path, bool Incremental, bool Refine,
                   bool PinTicketTemplate) {
  TermManager M;
  front::LoadResult L = front::loadProtocolFile(M, Path);
  ModeOutput Out;
  if (!L.ok()) {
    ADD_FAILURE() << Path << ": "
                  << (L.Error ? L.Error->render() : "load failed");
    return Out;
  }
  synth::SynthOptions Opts;
  Opts.Shape = L.Bundle->Shape;
  Opts.QGuard = L.Bundle->QGuard;
  Opts.Reduce.Card.Venn = L.Bundle->NeedsVenn;
  Opts.Explicit = L.Bundle->Explicit;
  Opts.Incremental = Incremental;
  Opts.Refine = Refine;
  if (PinTicketTemplate)
    Opts.FixedSetBodies = ticketBodies(M, Opts.Shape);
  synth::SynthResult R = synth::synthesize(*L.Bundle->Sys, Opts);
  Out.Verified = R.Verified;
  Out.Inconclusive = R.Inconclusive;
  Out.HasCex = R.Cex.has_value();
  for (Term S : R.SetBodies)
    Out.SetBodies.push_back(logic::toString(S));
  for (Term A : R.Atoms)
    Out.Atoms.push_back(logic::toString(A));
  Out.SmtChecks = R.Stats.SmtChecks;
  Out.Note = R.Note;
  return Out;
}

void expectModeEq(const char *Label, const ModeOutput &Got,
                  const ModeOutput &Eager) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Got.Verified, Eager.Verified)
      << Label << ": " << Got.Note << " / eager: " << Eager.Note;
  EXPECT_EQ(Got.Inconclusive, Eager.Inconclusive);
  EXPECT_EQ(Got.HasCex, Eager.HasCex);
  EXPECT_EQ(Got.SetBodies, Eager.SetBodies);
  EXPECT_EQ(Got.Atoms, Eager.Atoms);
  // The point of the incremental paths: never more solver checks than
  // the monolithic loop needs on the same protocol.
  EXPECT_LE(Got.SmtChecks, Eager.SmtChecks);
}

void expectParity(const std::string &Path, bool PinTicketTemplate) {
  SCOPED_TRACE(Path);
  ModeOutput Eager =
      runMode(Path, /*Incremental=*/false, /*Refine=*/true, PinTicketTemplate);
  ModeOutput Coarse =
      runMode(Path, /*Incremental=*/true, /*Refine=*/false, PinTicketTemplate);
  ModeOutput Cegar =
      runMode(Path, /*Incremental=*/true, /*Refine=*/true, PinTicketTemplate);
  expectModeEq("coarse-lazy", Coarse, Eager);
  expectModeEq("cegar", Cegar, Eager);
}

// The escalation budget is a performance valve, not a semantics knob: a
// budget of 1 forces the fall-back full grounding on nearly every check,
// and the verdict and invariant must not move.
TEST(SynthIncremental, TinyRefineBudgetKeepsParity) {
  const std::string Path = protoDir() + "/increment.sharpie";
  ModeOutput Eager = runMode(Path, /*Incremental=*/false, /*Refine=*/true,
                             /*PinTicketTemplate=*/false);
  TermManager M;
  front::LoadResult L = front::loadProtocolFile(M, Path);
  ASSERT_TRUE(L.ok());
  synth::SynthOptions Opts;
  Opts.Shape = L.Bundle->Shape;
  Opts.QGuard = L.Bundle->QGuard;
  Opts.Reduce.Card.Venn = L.Bundle->NeedsVenn;
  Opts.Explicit = L.Bundle->Explicit;
  Opts.Incremental = true;
  Opts.Refine = true;
  Opts.RefineBudget = 1;
  synth::SynthResult R = synth::synthesize(*L.Bundle->Sys, Opts);
  EXPECT_EQ(R.Verified, Eager.Verified) << R.Note;
  std::vector<std::string> Atoms;
  for (Term A : R.Atoms)
    Atoms.push_back(logic::toString(A));
  EXPECT_EQ(Atoms, Eager.Atoms);
}

TEST(SynthIncremental, EveryBundledProtocolAgreesAcrossModes) {
  std::vector<std::string> Stems;
  for (const auto &E : std::filesystem::directory_iterator(protoDir()))
    if (E.path().extension() == ".sharpie")
      Stems.push_back(E.path().stem().string());
  std::sort(Stems.begin(), Stems.end());
  ASSERT_FALSE(Stems.empty()) << "no .sharpie protocols under " << protoDir();
  // The corpus this suite was written against; growth is welcome,
  // silent shrinkage is not.
  ASSERT_GE(Stems.size(), 9u);
  for (const std::string &S : Stems)
    expectParity(protoDir() + "/" + S + ".sharpie",
                 /*PinTicketTemplate=*/S == "ticket_lock");
}

} // namespace
