//===- tests/serve_hash_test.cpp - Canonical content-hash tests ---------------===//
//
// Part of sharpie. front/Canon.h is the identity of every tier-1 store
// entry, so its stability properties are pinned in both directions:
//
//   stable:   re-parsing, whitespace/comment edits of the source,
//             sys::ParamSystem::cloneInto copies -- same hash;
//   distinct: semantic edits (a guard tweak, a changed check bound, a
//             flipped expectation) -- different hash.
//
//===----------------------------------------------------------------------===//

#include "front/Canon.h"
#include "front/Front.h"

#include <gtest/gtest.h>

using namespace sharpie;

namespace {

const char *BaseProtocol = R"(
protocol increment {
  global a;
  local pc;

  init: a == 0 && forall t. pc[t] == 1;
  safe: forall t. pc[t] >= 2 ==> a > 0;

  transition inc {
    guard: pc[self] == 1;
    a := a + 1;
    pc[self] := 2;
  }

  template {
    sets: 1;
  }

  check {
    threads: 3;
    start { pc := 1; }
  }

  property "(exists t: pc(t) >= 2) -> a > 0";
  expect safe;
}
)";

front::CanonicalHash hashOf(const std::string &Source) {
  logic::TermManager M;
  front::LoadResult L = front::loadProtocolString(M, Source);
  EXPECT_TRUE(L.ok()) << (L.Error ? L.Error->render() : "");
  return front::canonicalProblemHash(*L.Bundle);
}

TEST(CanonicalHash, HexIs32LowercaseDigits) {
  front::CanonicalHash H = hashOf(BaseProtocol);
  EXPECT_EQ(32u, H.hex().size());
  EXPECT_EQ(std::string::npos,
            H.hex().find_first_not_of("0123456789abcdef"));
  EXPECT_FALSE(H == front::CanonicalHash{});
}

TEST(CanonicalHash, StableAcrossReparse) {
  EXPECT_EQ(hashOf(BaseProtocol), hashOf(BaseProtocol));
}

TEST(CanonicalHash, StableAcrossWhitespaceAndCommentEdits) {
  std::string Reformatted = BaseProtocol;
  // Inject comments and mangle whitespace without touching semantics.
  size_t P = Reformatted.find("guard:");
  ASSERT_NE(std::string::npos, P);
  Reformatted.insert(P, "// the mover must still be at its first step\n    ");
  P = Reformatted.find("a := a + 1;");
  ASSERT_NE(std::string::npos, P);
  Reformatted.insert(P, "\n\n      ");
  Reformatted.insert(0, "// leading comment\n\n");
  EXPECT_EQ(hashOf(BaseProtocol), hashOf(Reformatted));
}

TEST(CanonicalHash, StableAcrossCloneInto) {
  logic::TermManager M;
  front::LoadResult L = front::loadProtocolString(M, BaseProtocol);
  ASSERT_TRUE(L.ok());
  front::FrontBundle &B = *L.Bundle;
  front::CanonicalHash Original = front::canonicalProblemHash(B);

  // A copy in a fresh manager interns terms in a different order; the
  // canonical text must not notice.
  logic::TermManager M2;
  std::unique_ptr<sys::ParamSystem> Clone = B.Sys->cloneInto(M2);
  front::CanonicalHash Cloned = front::canonicalProblemHash(
      *Clone, B.Shape, B.QGuard, B.Explicit, B.NeedsVenn, B.ExpectSafe);
  // QGuard still lives in the original manager; that is the point --
  // serialization reads term structure and names only, never manager
  // ids, so mixing managers cannot move the hash.
  EXPECT_EQ(Original, Cloned);
}

TEST(CanonicalHash, GuardTweakMovesTheHash) {
  std::string Tweaked = BaseProtocol;
  size_t P = Tweaked.find("guard: pc[self] == 1;");
  ASSERT_NE(std::string::npos, P);
  Tweaked.replace(P, std::string("guard: pc[self] == 1;").size(),
                  "guard: pc[self] <= 1;");
  EXPECT_NE(hashOf(BaseProtocol), hashOf(Tweaked));
}

TEST(CanonicalHash, CheckBoundChangeMovesTheHash) {
  std::string Tweaked = BaseProtocol;
  size_t P = Tweaked.find("threads: 3;");
  ASSERT_NE(std::string::npos, P);
  Tweaked.replace(P, std::string("threads: 3;").size(), "threads: 4;");
  EXPECT_NE(hashOf(BaseProtocol), hashOf(Tweaked));
}

TEST(CanonicalHash, ExpectationFlipMovesTheHash) {
  std::string Tweaked = BaseProtocol;
  size_t P = Tweaked.find("expect safe;");
  ASSERT_NE(std::string::npos, P);
  Tweaked.replace(P, std::string("expect safe;").size(), "expect unsafe;");
  EXPECT_NE(hashOf(BaseProtocol), hashOf(Tweaked));
}

TEST(CanonicalHash, CanonicalTextIsDiffable) {
  logic::TermManager M;
  front::LoadResult L = front::loadProtocolString(M, BaseProtocol);
  ASSERT_TRUE(L.ok());
  front::FrontBundle &B = *L.Bundle;
  std::string Text = front::canonicalProblemText(
      *B.Sys, B.Shape, B.QGuard, B.Explicit, B.NeedsVenn, B.ExpectSafe);
  EXPECT_NE(std::string::npos, Text.find("canon=sharpie-canon-v1"));
  EXPECT_NE(std::string::npos, Text.find("name=increment"));
  EXPECT_NE(std::string::npos, Text.find("transition=inc"));
}

} // namespace
