#!/bin/sh
# Part of sharpie. Lint: every counter/histogram name the library emits
# must be documented in DESIGN.md's metric name reference (section 12).
# An undocumented metric is invisible to operators reading the docs and
# silently skews dashboards; this makes adding the doc row part of
# adding the metric.
#
#   usage: lint_metrics.sh <repo-root>
#
# Emission sites: TraceBuffer::counter()/sample() calls, the traced
# solver-check helpers (checkTraced / checkAssumingTraced carry the
# phase-histogram name), and resil's bump() counter forwarder. Names are
# the quoted [a-z0-9_.] literals on those lines; comment-only lines are
# ignored so prose mentioning a histogram does not count as an emission.
ROOT=${1:?usage: lint_metrics.sh repo-root}
DESIGN="$ROOT/DESIGN.md"

[ -r "$DESIGN" ] || { echo "missing $DESIGN"; exit 1; }

NAMES=$(grep -rhE '(->counter\(|->sample\(|\bbump\(|checkTraced|checkAssumingTraced)' \
          "$ROOT/src" --include='*.cpp' --include='*.h' \
        | grep -vE '^[[:space:]]*//' \
        | grep -ohE '"[a-z][a-z0-9_.]*"' | tr -d '"' | sort -u)

[ -n "$NAMES" ] || { echo "no metric emissions found -- lint is broken"; exit 1; }

MISSING=
for N in $NAMES; do
  grep -qF "\`$N\`" "$DESIGN" || MISSING="$MISSING $N"
done

if [ -n "$MISSING" ]; then
  echo "metric names emitted in src/ but undocumented in DESIGN.md"
  echo "section 12 (add a table row with unit and meaning):"
  for N in $MISSING; do echo "  $N"; done
  exit 1
fi

# The overload runbook (README, DESIGN.md section 13) depends on the
# resilience counters; losing an emission site silently blinds it. Each
# must still be emitted somewhere in src/ (documentation is enforced by
# the generic pass above).
for R in requests_shed drain_cancelled breaker_trips serve_faults_injected; do
  echo "$NAMES" | grep -qx "$R" || {
    echo "required resilience counter '$R' is no longer emitted in src/"
    exit 1
  }
done
exit 0
