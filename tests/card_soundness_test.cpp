//===- tests/card_soundness_test.cpp - Theorem 1 property tests ----------------===//
//
// Part of sharpie. Property test for the soundness of the reduction
// pipeline (paper Theorem 1): whenever reduceToGround declares a formula
// unsatisfiable, no finite model may satisfy the original -- cardinalities
// evaluated exactly by the reference semantics of logic/Eval.h.
//
// Random formulas mix cardinality comparisons, update equations, universal
// facts and arithmetic; random finite models are sampled densely. A single
// (model satisfies Psi) /\ (reduction says Unsat) witness would be a
// soundness bug in the axioms of card/Card.cpp.
//
// Theorem 2 (relative completeness of CARD-UPD for difference bounds) is
// additionally spot-checked: for an update g = f[j <- v], the reduction
// must *derive* the exact +-1 relation between the two counts.
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"
#include "logic/Eval.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>
#include <random>

using namespace sharpie;
using namespace sharpie::logic;
using smt::SatResult;

namespace {

/// Builds random formulas over two arrays, two Tid vars, two Int scalars,
/// two cardinality terms, and an update equation.
class CardFormulaGen {
public:
  CardFormulaGen(TermManager &M, unsigned Seed)
      : M(M), Rng(Seed * 40503u + 1) {
    F = M.mkVar("f", Sort::Array);
    G = M.mkVar("g", Sort::Array);
    T1 = M.mkVar("t1", Sort::Tid);
    T2 = M.mkVar("t2", Sort::Tid);
    A = M.mkVar("a", Sort::Int);
    Bv = M.mkVar("b", Sort::Int);
    BoundT = M.mkVar("bt", Sort::Tid);
  }

  Term setBody(Term Arr) {
    Term Rd = M.mkRead(Arr, BoundT);
    switch (pick(4)) {
    case 0:
      return M.mkEq(Rd, M.mkInt(pick(3)));
    case 1:
      return M.mkGe(Rd, M.mkInt(pick(3)));
    case 2:
      return M.mkLe(Rd, A);
    default:
      return M.mkAnd(M.mkGe(Rd, M.mkInt(0)), M.mkLe(Rd, M.mkInt(pick(3))));
    }
  }

  Term formula() {
    Term CardF = M.mkCard(BoundT, setBody(F));
    Term CardG = M.mkCard(BoundT, setBody(G));
    std::vector<Term> Conj;
    // Cardinality comparisons.
    for (int I = 0; I < 2; ++I) {
      Term C = pick(2) ? CardF : CardG;
      Term Rhs = pick(2) ? Term(M.mkInt(pick(4)))
                         : (pick(2) ? A : Bv);
      switch (pick(3)) {
      case 0:
        Conj.push_back(M.mkLe(C, Rhs));
        break;
      case 1:
        Conj.push_back(M.mkLt(Rhs, C));
        break;
      default:
        Conj.push_back(M.mkEq(C, Rhs));
        break;
      }
    }
    // Maybe an update equation.
    if (pick(2))
      Conj.push_back(
          M.mkEq(G, M.mkStore(F, T1, M.mkInt(pick(4)))));
    // Maybe a universal fact.
    if (pick(2))
      Conj.push_back(M.mkForall(
          {BoundT}, M.mkGe(M.mkRead(F, BoundT), M.mkInt(0))));
    // Some arithmetic.
    Conj.push_back(pick(2) ? M.mkLe(A, Bv)
                           : M.mkEq(Bv, M.mkAdd(A, M.mkInt(1))));
    if (pick(2))
      Conj.push_back(M.mkGe(M.mkRead(F, T2), M.mkInt(pick(3))));
    return M.mkAnd(Conj);
  }

  /// Random finite model over the generator's variables.
  FiniteModel randomModel(int64_t N) {
    FiniteModel Mod;
    Mod.DomainSize = N;
    Mod.Scalars[A] = static_cast<int64_t>(pick(5)) - 1;
    Mod.Scalars[Bv] = static_cast<int64_t>(pick(5)) - 1;
    Mod.Scalars[T1] = pick(N);
    Mod.Scalars[T2] = pick(N);
    std::vector<int64_t> Fv, Gv;
    for (int64_t I = 0; I < N; ++I) {
      Fv.push_back(pick(4));
      Gv.push_back(pick(4));
    }
    Mod.Arrays[F] = Fv;
    Mod.Arrays[G] = Gv;
    return Mod;
  }

  /// All free variables must be interpreted; skolems introduced by the
  /// reduction don't appear in the original formula.
  TermManager &M;
  Term F, G, T1, T2, A, Bv, BoundT;

private:
  unsigned pick(size_t N) { return Rng() % static_cast<unsigned>(N); }
  std::mt19937 Rng;
};

class CardSoundnessTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CardSoundnessTest, ReductionNeverRefutesASatisfiableFormula) {
  TermManager M;
  CardFormulaGen Gen(M, GetParam());
  Term Psi = Gen.formula();

  // Search for a finite model first (cheap).
  bool FoundModel = false;
  FiniteModel Witness;
  for (int Trial = 0; Trial < 300 && !FoundModel; ++Trial) {
    FiniteModel Mod = Gen.randomModel(2 + Trial % 3);
    Evaluator Ev(Mod);
    if (Ev.evalBool(Psi)) {
      FoundModel = true;
      Witness = Mod;
    }
  }

  engine::ReduceOptions Opts;
  Opts.Card.Venn = GetParam() % 2 == 0; // Exercise both configurations.
  std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
  engine::ReduceResult R =
      engine::reduceToGround(M, Psi, Opts, Oracle.get());
  std::unique_ptr<smt::SmtSolver> S = smt::makeZ3Solver(M);
  S->add(R.Ground);
  SatResult Verdict = S->check();

  if (FoundModel)
    EXPECT_NE(Verdict, SatResult::Unsat)
        << "soundness bug: finite model exists for " << toString(Psi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CardSoundnessTest,
                         ::testing::Range(0u, 150u));

// Theorem 2 spot check: the update axiom captures the exact difference
// bound induced by a point-wise update.
TEST(CardCompleteness, UpdateAxiomDerivesExactDelta) {
  TermManager M;
  Term F = M.mkVar("f", Sort::Array);
  Term G = M.mkVar("g", Sort::Array);
  Term J = M.mkVar("j", Sort::Tid);
  Term T = M.mkVar("t", Sort::Tid);
  Term K = M.mkVar("k", Sort::Int);
  Term L = M.mkVar("l", Sort::Int);
  Term CardF = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(1)));
  Term CardG = M.mkCard(T, M.mkEq(M.mkRead(G, T), M.mkInt(1)));
  Term Base = M.mkAnd({M.mkEq(CardF, K), M.mkEq(CardG, L),
                       M.mkEq(M.mkRead(F, J), M.mkInt(0)),
                       M.mkEq(G, M.mkStore(F, J, M.mkInt(1)))});

  auto Refutes = [&](Term Extra) {
    std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
    engine::ReduceResult R = engine::reduceToGround(
        M, M.mkAnd(Base, Extra), {}, Oracle.get());
    std::unique_ptr<smt::SmtSolver> S = smt::makeZ3Solver(M);
    S->add(R.Ground);
    return S->check() == SatResult::Unsat;
  };
  // l = k + 1 must be forced: both strict deviations refuted...
  EXPECT_TRUE(Refutes(M.mkLe(L, K)));
  EXPECT_TRUE(Refutes(M.mkGe(L, M.mkAdd(K, M.mkInt(2)))));
  // ...and the exact value consistent.
  EXPECT_FALSE(Refutes(M.mkEq(L, M.mkAdd(K, M.mkInt(1)))));
}

} // namespace
