//===- tests/synth_basic_test.cpp - End-to-end synthesis smoke tests ----------===//
//
// Part of sharpie. Runs the full #Pi pipeline on the small Figure 6
// upper-table protocols and on the Sec. 3 increment program.
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::protocols;

namespace {

synth::SynthResult runBundle(ProtocolBundle &B, bool Verbose = false) {
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.Verbose = Verbose;
  return synth::synthesize(*B.Sys, Opts);
}

TEST(SynthBasic, ExplicitCheckerValidatesModels) {
  // Each correct model must be safe for small instances.
  for (BundleFactory Make :
       {makeIncrement, makeIntro, makeBluetooth, makeCache}) {
    logic::TermManager M;
    ProtocolBundle B = Make(M);
    explct::ExplicitResult R = explct::explore(*B.Sys, B.Explicit);
    EXPECT_TRUE(R.Safe) << B.Sys->name();
    EXPECT_GT(R.NumStates, 1u) << B.Sys->name();
  }
}

TEST(SynthBasic, Increment) {
  logic::TermManager M;
  ProtocolBundle B = makeIncrement(M);
  synth::SynthResult R = runBundle(B);
  EXPECT_TRUE(R.Verified) << R.Note;
  ASSERT_EQ(R.SetBodies.size(), 1u);
}

TEST(SynthBasic, Intro) {
  logic::TermManager M;
  ProtocolBundle B = makeIntro(M);
  synth::SynthResult R = runBundle(B);
  EXPECT_TRUE(R.Verified) << R.Note;
}

TEST(SynthBasic, Bluetooth) {
  logic::TermManager M;
  ProtocolBundle B = makeBluetooth(M);
  synth::SynthResult R = runBundle(B);
  EXPECT_TRUE(R.Verified) << R.Note;
}

TEST(SynthBasic, Cache) {
  logic::TermManager M;
  ProtocolBundle B = makeCache(M);
  synth::SynthResult R = runBundle(B);
  EXPECT_TRUE(R.Verified) << R.Note;
}

} // namespace
