//===- tests/resil_fault_test.cpp - Resilience layer & chaos runs --------------===//
//
// Part of sharpie. Three layers of coverage for the resilience subsystem
// (resil/Fault.h, resil/Resil.h):
//
//   * FaultPlan grammar: parse/render round-trips, every malformed spec
//     is rejected with a message, and FaultInjector decisions are a pure
//     function of (seed, site, scope, index) -- replayable by design.
//   * SupervisedSolver policy, pinned against a scripted back end: retry
//     only on timeout-class Unknowns, escalate to the fallback with the
//     assertion trail replayed, contain solver exceptions, honor the
//     global budget, and -- the soundness pin -- never turn an Unknown
//     into Sat/Unsat without a real solver answering.
//   * Chaos: increment and ticket under seeded FaultPlans (timeout storm,
//     every-Nth Unknown, one-worker-throws, all-throw) at 4 workers. The
//     verdict must be the fault-free one or honestly inconclusive; a
//     counterexample on these safe protocols would be a soundness bug.
//     The 4-worker cases double as the ThreadSanitizer ctest entry
//     (tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "logic/TermOps.h"
#include "protocols/Protocols.h"
#include "resil/Fault.h"
#include "resil/Resil.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace sharpie;
using namespace sharpie::protocols;
using resil::FailureClass;
using resil::FaultDecision;
using resil::FaultInjector;
using resil::FaultKind;
using resil::FaultPlan;
using resil::ResilCounters;
using resil::SupervisedSolver;
using resil::SupervisionOptions;
using smt::SatResult;

namespace {

// -- FaultPlan grammar --------------------------------------------------------

TEST(FaultPlan, ParseRenderRoundTrip) {
  std::string Err;
  auto P = FaultPlan::parse(
      "seed=7;smt_check:timeout@p=0.25;worker_task:throw@worker=2;"
      "reduce:latency=5@every=3;smt_check:unknown",
      &Err);
  ASSERT_TRUE(P.has_value()) << Err;
  EXPECT_EQ(P->Seed, 7u);
  ASSERT_EQ(P->Rules.size(), 4u);
  EXPECT_EQ(P->Rules[0].Site, "smt_check");
  EXPECT_EQ(P->Rules[0].Kind, FaultKind::Timeout);
  EXPECT_DOUBLE_EQ(P->Rules[0].Prob, 0.25);
  EXPECT_EQ(P->Rules[1].Worker, 2);
  EXPECT_EQ(P->Rules[2].Kind, FaultKind::Latency);
  EXPECT_EQ(P->Rules[2].LatencyMs, 5u);
  EXPECT_EQ(P->Rules[2].Every, 3u);
  // render() re-parses to the same plan (grammar is self-inverse).
  auto Q = FaultPlan::parse(P->render(), &Err);
  ASSERT_TRUE(Q.has_value()) << Err;
  EXPECT_EQ(Q->render(), P->render());
}

TEST(FaultPlan, SeedIsOptionalAndNoTriggerMeansAlways) {
  auto P = FaultPlan::parse("smt_check:unknown");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Seed, 0u);
  ASSERT_EQ(P->Rules.size(), 1u);
  EXPECT_LT(P->Rules[0].Prob, 0);
  EXPECT_EQ(P->Rules[0].Every, 0u);
  EXPECT_LT(P->Rules[0].Worker, 0);
}

TEST(FaultPlan, MalformedSpecsAreRejectedWithAMessage) {
  for (const char *Bad :
       {"seed=x", "norule", "smt_check:frobnicate", "smt_check:latency=x",
        "smt_check:timeout@p=2", "smt_check:timeout@nonsense",
        "smt_check:timeout@every=0", ":unknown"}) {
    std::string Err;
    EXPECT_FALSE(FaultPlan::parse(Bad, &Err).has_value()) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

// -- FaultInjector determinism ------------------------------------------------

std::vector<FaultKind> drawSequence(const FaultPlan &P, unsigned Worker,
                                    unsigned Scopes, unsigned PerScope) {
  FaultInjector Inj(P);
  Inj.setWorker(Worker);
  std::vector<FaultKind> Out;
  for (unsigned S = 0; S < Scopes; ++S) {
    Inj.beginScope(S + 1);
    for (unsigned I = 0; I < PerScope; ++I)
      Out.push_back(Inj.next("smt_check").Kind);
  }
  return Out;
}

TEST(FaultInjector, ProbabilisticRuleIsAPureFunctionOfSeedSiteScopeIndex) {
  auto P = FaultPlan::parse("seed=11;smt_check:timeout@p=0.5");
  ASSERT_TRUE(P.has_value());
  std::vector<FaultKind> A = drawSequence(*P, 0, 6, 40);
  std::vector<FaultKind> B = drawSequence(*P, 0, 6, 40);
  EXPECT_EQ(A, B) << "same plan, same scopes: decisions must replay";
  // Decisions do not depend on the worker that claims the scope (only the
  // explicit worker=W trigger keys on the rank).
  EXPECT_EQ(A, drawSequence(*P, 3, 6, 40));
  // A different seed draws a different sequence (p=0.5 over 240 draws
  // colliding is astronomically unlikely; this catches seed being ignored).
  auto P2 = FaultPlan::parse("seed=12;smt_check:timeout@p=0.5");
  EXPECT_NE(A, drawSequence(*P2, 0, 6, 40));
  size_t Fired = 0;
  for (FaultKind K : A)
    Fired += K != FaultKind::None;
  EXPECT_GT(Fired, 0u);
  EXPECT_LT(Fired, A.size());
}

TEST(FaultInjector, EveryNthFiresOnExactlyTheNthInvocation) {
  auto P = FaultPlan::parse("reduce:unknown@every=3");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj(*P);
  Inj.beginScope(1);
  for (unsigned I = 0; I < 9; ++I) {
    FaultKind K = Inj.next("reduce").Kind;
    if ((I + 1) % 3 == 0)
      EXPECT_EQ(K, FaultKind::Unknown) << "invocation " << I;
    else
      EXPECT_EQ(K, FaultKind::None) << "invocation " << I;
    // Other sites never match this rule.
    EXPECT_EQ(Inj.next("smt_check").Kind, FaultKind::None);
  }
  // beginScope resets the per-site index: the count restarts.
  Inj.beginScope(2);
  EXPECT_EQ(Inj.next("reduce").Kind, FaultKind::None);
  EXPECT_EQ(Inj.next("reduce").Kind, FaultKind::None);
  EXPECT_EQ(Inj.next("reduce").Kind, FaultKind::Unknown);
}

TEST(FaultInjector, WorkerTriggerKeysOnThePhysicalRank) {
  auto P = FaultPlan::parse("worker_task:throw@worker=2");
  ASSERT_TRUE(P.has_value());
  for (unsigned W : {0u, 1u, 2u, 3u}) {
    FaultInjector Inj(*P);
    Inj.setWorker(W);
    Inj.beginScope(1);
    FaultKind K = Inj.next("worker_task").Kind;
    if (W == 2)
      EXPECT_EQ(K, FaultKind::Throw);
    else
      EXPECT_EQ(K, FaultKind::None);
  }
}

// -- SupervisedSolver policy, against a scripted back end ---------------------

/// What one scripted back end instance observed, shared with the test so
/// replay into a fallback is visible.
struct ScriptLog {
  unsigned Checks = 0;
  unsigned Adds = 0;
  unsigned Pushes = 0;
  unsigned LastTimeoutMs = ~0u;
};

/// Answers check() from a fixed script; the last step repeats forever.
class ScriptedSolver final : public smt::SmtSolver {
public:
  enum Step { Sat, Unsat, UnknownTimeout, UnknownIncomplete, Throws };

  ScriptedSolver(std::vector<Step> Script, ScriptLog *Log)
      : Script(std::move(Script)), Log(Log) {}

  void push() override {
    if (Log)
      ++Log->Pushes;
  }
  void pop() override {}
  void add(logic::Term) override {
    if (Log)
      ++Log->Adds;
  }
  void setTimeoutMs(unsigned Ms) override {
    if (Log)
      Log->LastTimeoutMs = Ms;
  }
  std::unique_ptr<smt::SmtModel> model() override { return nullptr; }
  std::string reasonUnknown() const override { return Reason; }

  SatResult check() override {
    ++NumChecks;
    if (Log)
      ++Log->Checks;
    Step S = Script[std::min(Next, Script.size() - 1)];
    ++Next;
    switch (S) {
    case Sat:
      return SatResult::Sat;
    case Unsat:
      return SatResult::Unsat;
    case UnknownTimeout:
      Reason = "timeout";
      return SatResult::Unknown;
    case UnknownIncomplete:
      Reason = "incomplete: scripted";
      return SatResult::Unknown;
    case Throws:
      throw std::runtime_error("scripted backend failure");
    }
    return SatResult::Unknown;
  }

private:
  std::vector<Step> Script;
  ScriptLog *Log;
  size_t Next = 0;
  std::string Reason;
};

using Steps = std::vector<ScriptedSolver::Step>;

SupervisedSolver makeSupervised(Steps Primary, ScriptLog *PrimLog,
                                Steps Fallback, ScriptLog *FbLog,
                                ResilCounters &Sink,
                                FaultInjector *Faults = nullptr,
                                std::chrono::steady_clock::time_point Deadline =
                                    std::chrono::steady_clock::time_point::max()) {
  SupervisedSolver::Factory Fb;
  if (!Fallback.empty())
    Fb = [Fallback, FbLog] {
      return std::make_unique<ScriptedSolver>(Fallback, FbLog);
    };
  SupervisionOptions Opts;
  return SupervisedSolver(std::make_unique<ScriptedSolver>(Primary, PrimLog),
                          std::move(Fb), Opts, &Sink, Faults, "smt_check",
                          /*TB=*/nullptr, Deadline);
}

TEST(SupervisedSolver, FaultedCoreQueryDegradesToTheFullAssumptionCore) {
  // A chaos plan can fault the dedicated smt_check_assuming site without
  // touching plain checks. When the core query never gets a real Unsat
  // answer, unsatCore() must degrade to the full assumption list -- the
  // conservative reading for a core consumer (drop nothing it cannot
  // justify) -- and must not leak the primary's would-be answer.
  auto P = FaultPlan::parse("smt_check_assuming:unknown");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj(*P);
  Inj.beginScope(1);
  ScriptLog Log;
  ResilCounters Sink;
  SupervisedSolver S =
      makeSupervised({ScriptedSolver::Unsat}, &Log, {}, nullptr, Sink, &Inj);
  logic::TermManager M;
  std::vector<logic::Term> A = {M.mkVar("ind0", logic::Sort::Bool),
                                M.mkVar("ind1", logic::Sort::Bool),
                                M.mkVar("ind2", logic::Sort::Bool)};
  EXPECT_EQ(S.checkAssuming(A), SatResult::Unknown);
  EXPECT_EQ(Sink.FaultsInjected, 1u);
  EXPECT_EQ(Log.Checks, 0u) << "the injected fault must preempt the backend";
  EXPECT_EQ(S.unsatCore(), A);
  // The rule is site-scoped: a plain check on the same solver still
  // reaches the backend and answers.
  EXPECT_EQ(S.check(), SatResult::Unsat);
  EXPECT_EQ(Log.Checks, 1u);
}

TEST(SupervisedSolver, RetryRescuesATimeoutClassUnknown) {
  ScriptLog Log;
  ResilCounters Sink;
  SupervisedSolver S = makeSupervised(
      {ScriptedSolver::UnknownTimeout, ScriptedSolver::Sat}, &Log, {}, nullptr,
      Sink);
  EXPECT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.lastFailure(), FailureClass::None);
  EXPECT_EQ(Log.Checks, 2u);
  EXPECT_EQ(Sink.Retries, 1u);
  EXPECT_EQ(Sink.UnknownTimeout, 1u);
  EXPECT_EQ(Sink.Fallbacks, 0u);
}

TEST(SupervisedSolver, BackoffGrowsTheRetrySlice) {
  ScriptLog Log;
  ResilCounters Sink;
  SupervisedSolver S = makeSupervised(
      {ScriptedSolver::UnknownTimeout, ScriptedSolver::Sat}, &Log, {}, nullptr,
      Sink);
  S.setTimeoutMs(100);
  EXPECT_EQ(S.check(), SatResult::Sat);
  // Default BackoffFactor is 2.0: the rescue attempt ran with a 200ms slice.
  EXPECT_EQ(Log.LastTimeoutMs, 200u);
}

TEST(SupervisedSolver, IncompleteEscalatesToFallbackWithoutRetry) {
  ScriptLog PrimLog, FbLog;
  ResilCounters Sink;
  SupervisedSolver S =
      makeSupervised({ScriptedSolver::UnknownIncomplete}, &PrimLog,
                     {ScriptedSolver::Unsat}, &FbLog, Sink);
  EXPECT_EQ(S.check(), SatResult::Unsat);
  EXPECT_EQ(S.lastFailure(), FailureClass::None);
  EXPECT_EQ(PrimLog.Checks, 1u) << "incompleteness must not be retried";
  EXPECT_EQ(FbLog.Checks, 1u);
  EXPECT_EQ(Sink.Retries, 0u);
  EXPECT_EQ(Sink.Fallbacks, 1u);
  EXPECT_EQ(Sink.UnknownIncomplete, 1u);
}

TEST(SupervisedSolver, FallbackSeesTheReplayedAssertionTrail) {
  logic::TermManager M;
  logic::Term X = M.mkVar("x", logic::Sort::Int);
  ScriptLog FbLog;
  ResilCounters Sink;
  SupervisedSolver S =
      makeSupervised({ScriptedSolver::UnknownIncomplete}, nullptr,
                     {ScriptedSolver::Unsat}, &FbLog, Sink);
  S.add(M.mkGe(X, M.mkInt(0)));
  S.push();
  S.add(M.mkLe(X, M.mkInt(3)));
  S.add(M.mkGe(X, M.mkInt(5)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
  EXPECT_EQ(FbLog.Adds, 3u) << "all live assertions replayed";
  EXPECT_EQ(FbLog.Pushes, 1u) << "frame structure replayed";
  // pop() drops the inner frame and invalidates the fallback; the next
  // Unknown rebuilds one and replays only the surviving base assertion.
  S.pop();
  EXPECT_EQ(S.check(), SatResult::Unsat);
  EXPECT_EQ(FbLog.Adds, 4u);
  EXPECT_EQ(FbLog.Pushes, 1u);
}

TEST(SupervisedSolver, UnknownOnBothBackEndsStaysUnknown) {
  ScriptLog PrimLog, FbLog;
  ResilCounters Sink;
  SupervisedSolver S =
      makeSupervised({ScriptedSolver::UnknownIncomplete}, &PrimLog,
                     {ScriptedSolver::UnknownIncomplete}, &FbLog, Sink);
  // The soundness pin: no real solver answered, so the wrapper must pass
  // Unknown through -- never fabricate Sat/Unsat.
  EXPECT_EQ(S.check(), SatResult::Unknown);
  EXPECT_EQ(S.lastFailure(), FailureClass::Incomplete);
  EXPECT_EQ(Sink.Fallbacks, 1u);
  EXPECT_EQ(Sink.UnknownIncomplete, 2u);
}

TEST(SupervisedSolver, SolverExceptionIsContainedAndEscalated) {
  ScriptLog PrimLog, FbLog;
  ResilCounters Sink;
  SupervisedSolver S = makeSupervised({ScriptedSolver::Throws}, &PrimLog,
                                      {ScriptedSolver::Sat}, &FbLog, Sink);
  EXPECT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(Sink.SolverExceptions, 1u);
  EXPECT_EQ(Sink.Fallbacks, 1u);

  ResilCounters Sink2;
  SupervisedSolver S2 =
      makeSupervised({ScriptedSolver::Throws}, nullptr, {}, nullptr, Sink2);
  EXPECT_EQ(S2.check(), SatResult::Unknown);
  EXPECT_EQ(S2.lastFailure(), FailureClass::SolverException);
}

TEST(SupervisedSolver, ExhaustedBudgetShortCircuitsTheCheck) {
  ScriptLog Log;
  ResilCounters Sink;
  SupervisedSolver S =
      makeSupervised({ScriptedSolver::Sat}, &Log, {}, nullptr, Sink,
                     /*Faults=*/nullptr,
                     std::chrono::steady_clock::now() -
                         std::chrono::seconds(1));
  EXPECT_EQ(S.check(), SatResult::Unknown);
  EXPECT_EQ(S.lastFailure(), FailureClass::BudgetExhausted);
  EXPECT_EQ(Log.Checks, 0u) << "no time left: the back end is not consulted";
}

TEST(SupervisedSolver, InjectedUnknownIsClassifiedAsInjectedFault) {
  auto P = FaultPlan::parse("smt_check:unknown");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj(*P);
  Inj.beginScope(1);
  ScriptLog Log;
  ResilCounters Sink;
  SupervisedSolver S =
      makeSupervised({ScriptedSolver::Sat}, &Log, {}, nullptr, Sink, &Inj);
  EXPECT_EQ(S.check(), SatResult::Unknown);
  EXPECT_EQ(S.lastFailure(), FailureClass::InjectedFault);
  EXPECT_EQ(Sink.FaultsInjected, 1u);
  EXPECT_EQ(Log.Checks, 0u) << "the fault pre-empts the real back end";
}

TEST(SupervisedSolver, InjectedTimeoutIsRetriedAndRescuedByTheFallback) {
  // every=2 fires on the 2nd invocation: attempt 1 runs the scripted
  // timeout, the retry (invocation 2) is injected, the fallback
  // (invocation 3) runs clean and rescues the check.
  auto P = FaultPlan::parse("smt_check:timeout@every=2");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj(*P);
  Inj.beginScope(1);
  ScriptLog PrimLog, FbLog;
  ResilCounters Sink;
  SupervisedSolver S =
      makeSupervised({ScriptedSolver::UnknownTimeout}, &PrimLog,
                     {ScriptedSolver::Sat}, &FbLog, Sink, &Inj);
  EXPECT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(Sink.Retries, 1u);
  EXPECT_EQ(Sink.Fallbacks, 1u);
  EXPECT_EQ(Sink.FaultsInjected, 1u);
  EXPECT_EQ(PrimLog.Checks, 1u) << "the injected retry never reached check()";
  EXPECT_EQ(FbLog.Checks, 1u);
}

TEST(SupervisedSolver, DisabledSupervisionIsABarePassThrough) {
  ScriptLog Log;
  ResilCounters Sink;
  SupervisionOptions Opts;
  Opts.Enabled = false;
  SupervisedSolver S(std::make_unique<ScriptedSolver>(
                         Steps{ScriptedSolver::UnknownIncomplete}, &Log),
                     /*Fallback=*/nullptr, Opts, &Sink, /*Faults=*/nullptr,
                     "smt_check", /*TB=*/nullptr,
                     std::chrono::steady_clock::time_point::max());
  EXPECT_EQ(S.check(), SatResult::Unknown);
  EXPECT_EQ(Sink.Retries + Sink.Fallbacks + Sink.UnknownIncomplete, 0u);
}

TEST(ClassifyUnknownReason, TimeoutWordsVsEverythingElse) {
  using resil::classifyUnknownReason;
  EXPECT_EQ(classifyUnknownReason("timeout"), FailureClass::Timeout);
  EXPECT_EQ(classifyUnknownReason("canceled"), FailureClass::Timeout);
  EXPECT_EQ(classifyUnknownReason("conflict budget exceeded"),
            FailureClass::Timeout);
  EXPECT_EQ(classifyUnknownReason("max. memory exceeded"),
            FailureClass::Timeout);
  EXPECT_EQ(classifyUnknownReason("incomplete: outside the ground fragment"),
            FailureClass::Incomplete);
  EXPECT_EQ(classifyUnknownReason(""), FailureClass::Incomplete);
}

// -- Chaos: whole-pipeline runs under seeded fault plans ----------------------

struct ChaosOut {
  bool Verified = false;
  bool Inconclusive = false;
  bool Cex = false;
  std::vector<std::string> SetBodies, Atoms;
  synth::SynthStats Stats;
};

ChaosOut runChaos(BundleFactory Make, unsigned Workers, const char *PlanSpec,
                  bool Supervised = true) {
  logic::TermManager M;
  ProtocolBundle B = Make(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = Workers;
  // A hung run is the one unacceptable outcome; the budget turns it into
  // an inconclusive verdict long before the ctest TIMEOUT would fire.
  Opts.TimeBudgetSeconds = 120;
  // Short per-check slices keep the storms fast: an injected timeout is
  // retried with a grown slice and may escalate to the MiniSolver
  // fallback, which honors this deadline while grinding on queries
  // outside its fragment. Real checks on these protocols take
  // milliseconds, so the cap never fires on the fault-free path.
  Opts.SmtTimeoutMs = 2000;
  Opts.Supervise.Enabled = Supervised;
  FaultPlan Plan;
  if (PlanSpec) {
    auto P = FaultPlan::parse(PlanSpec);
    EXPECT_TRUE(P.has_value()) << PlanSpec;
    if (P)
      Plan = *P;
    Opts.Faults = &Plan;
  }
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  ChaosOut Out;
  Out.Verified = R.Verified;
  Out.Inconclusive = R.Inconclusive;
  Out.Cex = R.Cex.has_value();
  for (logic::Term S : R.SetBodies)
    Out.SetBodies.push_back(logic::toString(S));
  for (logic::Term A : R.Atoms)
    Out.Atoms.push_back(logic::toString(A));
  Out.Stats = R.Stats;
  return Out;
}

/// The chaos invariant: on a safe protocol, a faulted run either still
/// verifies or is honestly inconclusive. It must never report a
/// counterexample, and never be a silent "not verified" with no recorded
/// failure.
void expectHonest(const ChaosOut &Out, const char *What) {
  EXPECT_FALSE(Out.Cex) << What << ": fault injection fabricated a cex";
  if (!Out.Verified) {
    EXPECT_TRUE(Out.Inconclusive)
        << What << ": failed without a recorded failure class";
  }
}

TEST(Chaos, TimeoutStormOnIncrementFourWorkers) {
  // The incremental Houdini loop answers through checkAssuming, which
  // draws faults from its own site; the storm has to cover both sites to
  // keep raining on the default configuration.
  ChaosOut Out = runChaos(
      makeIncrement, 4,
      "seed=1;smt_check:timeout@p=0.4;smt_check_assuming:timeout@p=0.4");
  expectHonest(Out, "increment timeout storm");
  EXPECT_GT(Out.Stats.FaultsInjected, 0u);
  // Injected timeouts are retried; at least one retry must have fired.
  EXPECT_GT(Out.Stats.Retries + Out.Stats.Fallbacks, 0u);
}

TEST(Chaos, EveryThirdCheckUnknownOnIncrementFourWorkers) {
  ChaosOut Out =
      runChaos(makeIncrement, 4, "seed=2;smt_check:unknown@every=3");
  expectHonest(Out, "increment every-3rd check unknown");
  EXPECT_GT(Out.Stats.FaultsInjected, 0u);
}

TEST(Chaos, EveryThirdAssumingCheckUnknownOnIncrementFourWorkers) {
  // Stresses the merged-context Houdini checks specifically: every third
  // checkAssuming goes Unknown, so fixpoint confirmations and core
  // queries are the ones degrading. The conservative core fallback (the
  // full assumption list) plus the loop's Unknown handling must keep the
  // verdict honest, never fabricate a counterexample, and never drop an
  // atom it cannot justify (which would surface as a failed recheck).
  ChaosOut Out =
      runChaos(makeIncrement, 4, "seed=3;smt_check_assuming:unknown@every=3");
  expectHonest(Out, "increment every-3rd assuming check unknown");
  EXPECT_GT(Out.Stats.FaultsInjected, 0u);
}

TEST(Chaos, EveryThirdReduceUnknownOnOneThird) {
  // The reduce site guards the Venn-region oracle, which only protocols
  // with NeedsVenn consult; one-third is the fastest of them. An Unknown
  // there must only coarsen the reduction, never flip the verdict.
  ChaosOut Out = runChaos(makeOneThird, 1, "seed=2;reduce:unknown@every=3");
  expectHonest(Out, "one-third every-3rd reduce unknown");
  EXPECT_GT(Out.Stats.FaultsInjected, 0u);
}

TEST(Chaos, OneWorkerAlwaysThrowsOnIncrementFourWorkers) {
  ChaosOut Out = runChaos(makeIncrement, 4, "seed=3;worker_task:throw@worker=1");
  expectHonest(Out, "increment worker-1 throws");
}

TEST(Chaos, AllWorkersThrowIsHonestlyInconclusive) {
  ChaosOut Out = runChaos(makeIncrement, 4, "seed=4;worker_task:throw");
  EXPECT_FALSE(Out.Verified);
  EXPECT_FALSE(Out.Cex);
  EXPECT_TRUE(Out.Inconclusive);
  EXPECT_GT(Out.Stats.TuplesSkipped, 0u);
  EXPECT_EQ(Out.Stats.TuplesSkipped, Out.Stats.WorkerExceptions);
}

TEST(Chaos, UnknownAtEverySiteNeverVerifies) {
  // With every SMT answer forced to Unknown nothing can be proven; a
  // "verified" here would mean some caller treated Unknown as Unsat/Valid.
  ChaosOut Out =
      runChaos(makeIncrement, 1, "seed=5;smt_check:unknown;reduce:unknown");
  EXPECT_FALSE(Out.Verified);
  EXPECT_FALSE(Out.Cex);
  EXPECT_TRUE(Out.Inconclusive);
  EXPECT_GT(Out.Stats.FaultsInjected, 0u);
}

// -- Chaos at the refine site (model-guided instantiation, PR-10) -------------
//
// The `refine` site guards the per-round manifest evaluation inside
// incCheck's CEGAR loop. Timeout/Unknown there mean "the model became
// unusable mid-refinement" and must degrade to a full grounding of every
// selected pending clause -- lossless, so the run still verifies; Throw
// unwinds through the tuple containment path like any worker fault.

TEST(Chaos, RefineUnknownDegradesToFullGrounding) {
  ChaosOut Out = runChaos(makeIncrement, 1, "seed=8;refine:unknown@every=2");
  expectHonest(Out, "increment refine unknown");
  EXPECT_GT(Out.Stats.FaultsInjected, 0u)
      << "the CEGAR loop never reached the refine site";
  // Degrading to the full grounding loses nothing: the verdict must be
  // the fault-free one, not merely honest.
  EXPECT_TRUE(Out.Verified);
}

TEST(Chaos, RefineThrowIsContainedOnIncrementFourWorkers) {
  ChaosOut Out = runChaos(makeIncrement, 4, "seed=9;refine:throw@every=2");
  expectHonest(Out, "increment refine throw");
}

TEST(Chaos, RefineLatencyOnlySlowsTheRun) {
  ChaosOut Out = runChaos(makeIncrement, 1, "seed=10;refine:latency=5@every=2");
  expectHonest(Out, "increment refine latency");
  EXPECT_TRUE(Out.Verified);
}

TEST(Chaos, RefineFaultedRunsReplayExactly) {
  const char *Plan = "seed=11;refine:unknown@every=2;refine:throw@every=5";
  ChaosOut A = runChaos(makeIncrement, 1, Plan);
  ChaosOut B = runChaos(makeIncrement, 1, Plan);
  EXPECT_EQ(A.Verified, B.Verified);
  EXPECT_EQ(A.SetBodies, B.SetBodies);
  EXPECT_EQ(A.Atoms, B.Atoms);
  EXPECT_EQ(A.Stats.FaultsInjected, B.Stats.FaultsInjected);
}

TEST(Chaos, TimeoutStormOnTicketFourWorkers) {
  ChaosOut Out =
      runChaos(makeTicketMutex, 4, "seed=6;smt_check:timeout@p=0.3");
  expectHonest(Out, "ticket timeout storm");
}

TEST(Chaos, SerialFaultedRunsReplayExactly) {
  const char *Plan = "seed=7;smt_check:timeout@p=0.35;reduce:unknown@every=4";
  ChaosOut A = runChaos(makeIncrement, 1, Plan);
  ChaosOut B = runChaos(makeIncrement, 1, Plan);
  EXPECT_EQ(A.Verified, B.Verified);
  EXPECT_EQ(A.Inconclusive, B.Inconclusive);
  EXPECT_EQ(A.SetBodies, B.SetBodies);
  EXPECT_EQ(A.Atoms, B.Atoms);
  EXPECT_EQ(A.Stats.FaultsInjected, B.Stats.FaultsInjected);
  EXPECT_EQ(A.Stats.Retries, B.Stats.Retries);
  EXPECT_EQ(A.Stats.Fallbacks, B.Stats.Fallbacks);
}

TEST(Chaos, FaultFreeSupervisedRunMatchesUnsupervised) {
  // The acceptance bar: with no faults firing, supervision must not
  // change the verdict or the invariant.
  ChaosOut Plain = runChaos(makeIncrement, 1, nullptr, /*Supervised=*/false);
  ChaosOut Supervised = runChaos(makeIncrement, 1, nullptr);
  ASSERT_TRUE(Plain.Verified);
  ASSERT_TRUE(Supervised.Verified);
  EXPECT_EQ(Plain.SetBodies, Supervised.SetBodies);
  EXPECT_EQ(Plain.Atoms, Supervised.Atoms);
  EXPECT_EQ(Supervised.Stats.FaultsInjected, 0u);
}

} // namespace
