//===- examples/one_third_consensus.cpp - One-third rule (paper Fig. 3) -----------===//
//
// Part of sharpie. Verifies agreement of the one-third rule consensus
// protocol in the heard-of model (paper Sec. 2): a synchronous, round-based
// system whose round relation itself contains cardinality thresholds
// (> 2n/3 of the processes), exercised with the Venn decomposition of
// Sec. 5.2.
//
//===----------------------------------------------------------------------===//

#include "explicit/Explicit.h"
#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <cstdio>

using namespace sharpie;

int main() {
  logic::TermManager M;
  protocols::ProtocolBundle B = protocols::makeOneThird(M);
  std::printf("one-third rule (paper Fig. 3, heard-of model)\n"
              "property: %s\n",
              B.Property.c_str());

  // Exhaustive rounds for 3 processes over initial proposals {0,1}.
  explct::ExplicitResult ER = explct::explore(*B.Sys, B.Explicit);
  std::printf("explicit N=%lld: %u states, %s\n",
              static_cast<long long>(B.Explicit.NumThreads), ER.NumStates,
              ER.Safe ? "agreement holds" : "AGREEMENT VIOLATED");
  if (!ER.Safe)
    return 1;

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;          // one set, one Tid quantifier
  Opts.Reduce.Card.Venn = true;
  Opts.Explicit = B.Explicit;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  if (!R.Verified) {
    std::printf("synthesis failed: %s\n", R.Note.c_str());
    return 1;
  }
  std::printf("\nVERIFIED for every number of processes, in %.2fs.\n",
              R.Stats.Seconds);
  std::printf("inferred cardinality (paper: %s):\n", B.PaperCards.c_str());
  for (logic::Term S : R.SetBodies)
    std::printf("  #{t | %s}\n", logic::toString(S).c_str());
  std::printf("invariant atoms:\n");
  for (logic::Term A : R.Atoms)
    std::printf("  %s\n", logic::toString(A).c_str());
  return 0;
}
