//===- examples/run_protocol_fixed.cpp - #Pi with a pinned template ---------------===//
//
// Part of sharpie. Like run_protocol, but hands #Pi the exact set bodies
// the paper's tables report (the paper's shape templates made fully
// concrete). Useful to separate the set-search cost from the solving cost
// and for debugging individual benchmarks:
//
//   example_run_protocol_fixed ticket [--verbose]
//
//===----------------------------------------------------------------------===//

#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;

int main(int argc, char **argv) {
  bool Verbose = false;
  std::string Name;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--verbose"))
      Verbose = true;
    else
      Name = argv[I];
  }

  logic::TermManager M;
  ProtocolBundle B;
  std::vector<Term> Fixed;
  if (Name == "ticket") {
    B = makeTicketLock(M);
    synth::Formals F = synth::formalsFor(M, B.Shape);
    Term PC = M.mkVar("pc", Sort::Array);
    Term Mv = M.mkVar("m", Sort::Array);
    Term Serv = M.mkVar("serv", Sort::Int);
    Term T = F.BoundVar;
    Fixed = {M.mkAnd(M.mkLe(M.mkRead(Mv, T), Serv),
                     M.mkEq(M.mkRead(PC, T), M.mkInt(2))),
             M.mkEq(M.mkRead(PC, T), M.mkInt(3)),
             M.mkEq(M.mkRead(Mv, T), F.Q[0])};
  } else if (Name == "filter") {
    B = makeFilterLock(M);
    synth::Formals F = synth::formalsFor(M, B.Shape);
    Term Lv = M.mkVar("lv", Sort::Array);
    Fixed = {M.mkGe(M.mkRead(Lv, F.BoundVar), F.Q[0])};
  } else if (Name == "one-third") {
    B = makeOneThird(M);
    synth::Formals F = synth::formalsFor(M, B.Shape);
    Term X = M.mkVar("x", Sort::Array);
    Fixed = {M.mkEq(M.mkRead(X, F.BoundVar), M.mkRead(X, F.Q[0]))};
  } else {
    std::fprintf(stderr, "usage: %s ticket|filter|one-third [--verbose]\n",
                 argv[0]);
    return 2;
  }

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.Verbose = Verbose;
  Opts.FixedSetBodies = Fixed;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  if (R.Verified) {
    std::printf("VERIFIED in %.2fs with the paper template\n",
                R.Stats.Seconds);
    for (Term A : R.Atoms)
      std::printf("  %s\n", logic::toString(A).c_str());
    return 0;
  }
  std::printf("NOT VERIFIED: %s\n", R.Note.c_str());
  return 1;
}
