//===- examples/run_protocol.cpp - Run #Pi on a named benchmark ----------------===//
//
// Part of sharpie. Command-line driver over the whole benchmark suite:
//
//   example_run_protocol <name> [--verbose] [--workers N] [--json]
//   example_run_protocol --protocol <file.sharpie> [same flags]
//
// Prints the synthesized invariant (inferred cardinalities + scalar part)
// or the explicit counterexample for buggy variants. `--list` shows all
// benchmark names. `--workers N` sets the parallel search width (0 = one
// worker per hardware thread, 1 = serial); `--json` appends a
// machine-readable result line to stdout. `--protocol` elaborates a
// textual protocol through the frontend instead of a built-in bundle;
// frontend failures exit 3 like the sharpie driver. The shared
// observability flags (--trace-out, --events-out, --log-level, --stats;
// SHARPIE_TRACE / SHARPIE_EVENTS / SHARPIE_LOG_LEVEL in the environment),
// --no-incremental (the monolithic-Houdini A/B baseline; see
// SynthOptions::Incremental), --no-refine / --refine-budget N (the
// model-guided instance-refinement knobs; see SynthOptions::Refine), and
// the resilience flags (--faults / SHARPIE_FAULTS, --no-supervise,
// --smt-timeout MS) work exactly as in tools/sharpie.cpp.
//
// Exit codes: 0 expected outcome (verified, or counterexample on a buggy
// variant), 1 unexpected outcome, 2 usage error, 3 frontend error,
// 4 inconclusive (no verdict and some failure may have hidden one).
//
//===----------------------------------------------------------------------===//

#include "front/ExitCodes.h"
#include "front/Front.h"
#include "logic/TermOps.h"
#include "obs/Cli.h"
#include "protocols/Protocols.h"
#include "resil/Fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

using namespace sharpie;
using namespace sharpie::protocols;

static std::map<std::string, BundleFactory> registry() {
  std::map<std::string, BundleFactory> R;
  R["increment"] = makeIncrement;
  R["intro"] = makeIntro;
  R["bluetooth"] = makeBluetooth;
  R["cache"] = makeCache;
  R["ticket"] = makeTicketLock;
  R["filter"] = makeFilterLock;
  R["one-third"] = makeOneThird;
  R["max"] = [](logic::TermManager &M) { return makeMax(M, true); };
  R["max-nobar"] = [](logic::TermManager &M) { return makeMax(M, false); };
  R["reader-writer"] = [](logic::TermManager &M) {
    return makeReaderWriter(M, true);
  };
  R["reader-writer-bug"] = [](logic::TermManager &M) {
    return makeReaderWriter(M, false);
  };
  R["parent-child"] = [](logic::TermManager &M) {
    return makeParentChild(M, true);
  };
  R["parent-child-nobar"] = [](logic::TermManager &M) {
    return makeParentChild(M, false);
  };
  R["simp-bar"] = [](logic::TermManager &M) { return makeSimpBar(M, true); };
  R["simp-nobar"] = [](logic::TermManager &M) {
    return makeSimpBar(M, false);
  };
  R["dyn-barrier"] = [](logic::TermManager &M) {
    return makeDynBarrier(M, true);
  };
  R["dyn-barrier-nobar"] = [](logic::TermManager &M) {
    return makeDynBarrier(M, false);
  };
  R["as-many"] = [](logic::TermManager &M) { return makeAsMany(M, true); };
  R["as-many-bug"] = [](logic::TermManager &M) {
    return makeAsMany(M, false);
  };
  R["tree-traverse"] = makeTreeTraverse;
  R["garbage-collection"] = makeGarbageCollection;
  R["simplified-bakery"] = makeSimplifiedBakery;
  R["lamport-bakery"] = makeLamportBakery;
  R["bogus-bakery"] = makeBogusBakery;
  R["ticket-mutex"] = makeTicketMutex;
  R["barrier"] = makeBarrier;
  R["central-barrier"] = makeCentralBarrier;
  R["work-stealing"] = makeWorkStealing;
  R["dining-philosophers"] = makeDiningPhilosophers;
  R["robot-2x2"] = [](logic::TermManager &M) { return makeRobot(M, 2, 2); };
  R["robot-3x3"] = [](logic::TermManager &M) { return makeRobot(M, 3, 3); };
  return R;
}

static int runMain(int argc, char **argv) {
  bool Verbose = false;
  bool Json = false;
  bool NoSupervise = false;
  bool NoIncremental = false;
  bool NoRefine = false;
  unsigned Workers = 1;
  unsigned SmtTimeoutMs = 0;  // 0 = keep the SynthOptions default.
  unsigned RefineBudget = 0;  // 0 = keep the SynthOptions default.
  std::string Name;
  std::string ProtocolFile;
  std::string FaultSpec;
  if (const char *Env = std::getenv("SHARPIE_FAULTS"))
    FaultSpec = Env; // --faults below overrides the environment.
  obs::CliObs Obs;
  Obs.readEnv(); // Flags below override the environment.
  for (int I = 1; I < argc; ++I) {
    std::string ObsErr;
    if (Obs.parseArg(argc, argv, I, ObsErr)) {
      if (!ObsErr.empty()) {
        std::fprintf(stderr, "error: %s\n", ObsErr.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[I], "--verbose"))
      Verbose = true;
    else if (!std::strcmp(argv[I], "--json"))
      Json = true;
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--protocol") && I + 1 < argc)
      ProtocolFile = argv[++I];
    else if (!std::strcmp(argv[I], "--faults") && I + 1 < argc)
      FaultSpec = argv[++I];
    else if (!std::strcmp(argv[I], "--no-supervise"))
      NoSupervise = true;
    else if (!std::strcmp(argv[I], "--no-incremental"))
      NoIncremental = true;
    else if (!std::strcmp(argv[I], "--no-refine"))
      NoRefine = true;
    else if (!std::strcmp(argv[I], "--refine-budget") && I + 1 < argc)
      RefineBudget =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--smt-timeout") && I + 1 < argc)
      SmtTimeoutMs =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--list")) {
      for (const auto &[K, V] : registry())
        std::printf("%s\n", K.c_str());
      return 0;
    } else
      Name = argv[I];
  }
  if (Verbose &&
      static_cast<int>(Obs.Level) < static_cast<int>(obs::LogLevel::Debug))
    Obs.Level = obs::LogLevel::Debug;
  resil::FaultPlan Faults;
  if (!FaultSpec.empty()) {
    std::string FErr;
    if (auto P = resil::FaultPlan::parse(FaultSpec, &FErr))
      Faults = std::move(*P);
    else {
      std::fprintf(stderr, "error: bad fault plan: %s\n", FErr.c_str());
      return 2;
    }
  }
  std::unique_ptr<obs::Tracer> Tracer = Obs.makeTracer();

  auto T0 = std::chrono::steady_clock::now();
  logic::TermManager M;
  ProtocolBundle B;
  if (!ProtocolFile.empty()) {
    front::LoadResult L = front::loadProtocolFile(
        M, ProtocolFile, Tracer ? Tracer->worker(0) : nullptr);
    if (!L.ok()) {
      std::fprintf(stderr, "%s\n", L.Error->render().c_str());
      return front::ExitError;
    }
    B.Sys = std::move(L.Bundle->Sys);
    B.Shape = L.Bundle->Shape;
    B.QGuard = L.Bundle->QGuard;
    B.Explicit = L.Bundle->Explicit;
    B.ExpectSafe = L.Bundle->ExpectSafe;
    B.NeedsVenn = L.Bundle->NeedsVenn;
    B.Property = L.Bundle->Property;
    Name = B.Sys->name();
  } else {
    std::map<std::string, BundleFactory> R = registry();
    auto It = R.find(Name);
    if (It == R.end()) {
      std::fprintf(stderr,
                   "usage: %s <name> [--verbose] [--workers N] [--json]; "
                   "%s --protocol <file.sharpie>; --list for names\n",
                   argv[0], argv[0]);
      return 2;
    }
    B = It->second(M);
  }
  std::printf("== %s ==\nproperty: %s\n", B.Sys->name().c_str(),
              B.Property.c_str());

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.Trace = Tracer.get();
  Opts.Verbose = Verbose;
  Opts.NumWorkers = Workers;
  Opts.Supervise.Enabled = !NoSupervise;
  Opts.Incremental = !NoIncremental;
  Opts.Refine = !NoRefine;
  if (RefineBudget)
    Opts.RefineBudget = RefineBudget;
  if (SmtTimeoutMs)
    Opts.SmtTimeoutMs = SmtTimeoutMs;
  if (!Faults.empty())
    Opts.Faults = &Faults;
  auto T1 = std::chrono::steady_clock::now();
  synth::SynthResult Res = synth::synthesize(*B.Sys, Opts);
  auto Since = [](std::chrono::steady_clock::time_point T) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - T)
        .count();
  };
  double SynthSeconds = Since(T1);
  double TotalSeconds = Since(T0);

  if (Tracer) {
    std::string Err;
    if (!Obs.writeOutputs(*Tracer, Err))
      std::fprintf(stderr, "warning: %s\n", Err.c_str());
  }
  if (Obs.Stats)
    std::fprintf(stderr, "%s",
                 synth::renderStatsTable(Res.Stats, SynthSeconds).c_str());

  if (Json) {
    // cache_lookup_seconds is a constant 0 here: this driver has no
    // persistent store. The field is emitted anyway so every JSON
    // surface (sharpie, sharpie --store/--server, run_protocol) carries
    // the same timing schema.
    std::printf("{\"protocol\":\"%s\",\"verified\":%s,\"found_cex\":%s,"
                "\"inconclusive\":%s,\"cache_lookup_seconds\":0.000000,"
                "\"synth_seconds\":%.3f,\"total_seconds\":%.3f,%s}\n",
                Name.c_str(), Res.Verified ? "true" : "false",
                Res.Cex ? "true" : "false",
                Res.Inconclusive ? "true" : "false", SynthSeconds,
                TotalSeconds, synth::statsJsonFields(Res.Stats).c_str());
  }

  if (Res.Verified) {
    std::printf("VERIFIED in %.2fs (%u tuples, %u SMT checks)\n",
                Res.Stats.Seconds, Res.Stats.TuplesTried,
                Res.Stats.SmtChecks);
    std::printf("inferred cardinalities:\n");
    for (logic::Term S : Res.SetBodies)
      std::printf("  #{t | %s}\n", logic::toString(S).c_str());
    std::printf("invariant atoms (%zu):\n", Res.Atoms.size());
    for (logic::Term A : Res.Atoms)
      std::printf("  %s\n", logic::toString(A).c_str());
    return 0;
  }
  if (Res.Cex) {
    std::printf("UNSAFE: explicit counterexample (%zu steps):\n",
                Res.Cex->TransitionNames.size());
    for (const std::string &S : Res.Cex->TransitionNames)
      std::printf("  %s\n", S.c_str());
    return B.ExpectSafe ? 1 : 0;
  }
  if (Res.Inconclusive) {
    std::printf("INCONCLUSIVE after %.2fs: %s\n", Res.Stats.Seconds,
                Res.Note.c_str());
    std::printf("%s", synth::renderInconclusiveReport(Res).c_str());
    return front::ExitInconclusive;
  }
  std::printf("NOT VERIFIED after %.2fs: %s\n", Res.Stats.Seconds,
              Res.Note.c_str());
  return 1;
}

int main(int argc, char **argv) {
  // Built-in bundles construct models directly, so a sys::ModelError (or
  // any stray throw) can reach this driver without passing through the
  // frontend's containment; exit 3 with a message, never abort.
  try {
    return runMain(argc, argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 3;
  }
}
