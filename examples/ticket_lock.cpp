//===- examples/ticket_lock.cpp - Verifying the ticket lock (paper Fig. 1) -------===//
//
// Part of sharpie. Verifies mutual exclusion of the classic ticket lock,
// the paper's first motivating example (Sec. 2): #Pi infers a combination
// of cardinalities and a universally quantified per-ticket counting
// invariant. The run also demonstrates the explicit-state checker as an
// independent witness on small instances.
//
//===----------------------------------------------------------------------===//

#include "explicit/Explicit.h"
#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <cstdio>

using namespace sharpie;

int main() {
  logic::TermManager M;
  protocols::ProtocolBundle B = protocols::makeTicketLock(M);
  std::printf("ticket lock (paper Fig. 1)\nproperty: %s\n",
              B.Property.c_str());

  // Independent evidence first: exhaustively explore small instances.
  for (int64_t N = 2; N <= 3; ++N) {
    explct::ExplicitOptions EO = B.Explicit;
    EO.NumThreads = N;
    explct::ExplicitResult ER = explct::explore(*B.Sys, EO);
    std::printf("explicit N=%lld: %u states, %s\n",
                static_cast<long long>(N), ER.NumStates,
                ER.Safe ? "safe" : "UNSAFE");
    if (!ER.Safe)
      return 1;
  }

  // The parameterized proof.
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;           // 3 sets, one Int quantifier (paper Fig. 6).
  Opts.QGuard = B.QGuard;         // tickets are non-negative
  Opts.Reduce.Card.Venn = true;   // paper Sec. 5.2
  Opts.Explicit = B.Explicit;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  if (!R.Verified) {
    std::printf("synthesis failed: %s\n", R.Note.c_str());
    return 1;
  }
  std::printf("\nVERIFIED for every number of threads, in %.2fs.\n",
              R.Stats.Seconds);
  std::printf("inferred cardinalities (paper: %s):\n", B.PaperCards.c_str());
  for (logic::Term S : R.SetBodies)
    std::printf("  #{t | %s}\n", logic::toString(S).c_str());
  std::printf("invariant atoms:\n");
  for (logic::Term A : R.Atoms)
    std::printf("  %s\n", logic::toString(A).c_str());
  return 0;
}
