//===- examples/garbage_collection.cpp - Tri-colour GC (paper Fig. 8) -------------===//
//
// Part of sharpie. Verifies the mark-and-sweep garbage collector of paper
// Fig. 8: parallel mutators grey white nodes under a lock while a marker
// thread greys and then blackens; the property couples mutator mutual
// exclusion with colour monotonicity ("nodes only darken"), the paper's
// showcase for the interplay of safety properties and cardinalities.
//
//===----------------------------------------------------------------------===//

#include "explicit/Explicit.h"
#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <cstdio>

using namespace sharpie;

int main() {
  logic::TermManager M;
  protocols::ProtocolBundle B = protocols::makeGarbageCollection(M);
  std::printf("garbage collection (paper Fig. 8)\nproperty: %s\n",
              B.Property.c_str());

  // Exhaustive exploration of the 3-address instance: colours darken
  // monotonically and at most one mutator is in its critical region.
  explct::ExplicitResult ER = explct::explore(*B.Sys, B.Explicit);
  std::printf("explicit N=%lld: %u states, %s\n",
              static_cast<long long>(B.Explicit.NumThreads), ER.NumStates,
              ER.Safe ? "safe" : "UNSAFE");
  if (!ER.Safe)
    return 1;

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape; // One counting set, no quantifiers.
  Opts.Explicit = B.Explicit;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  if (!R.Verified) {
    std::printf("synthesis failed: %s\n", R.Note.c_str());
    return 1;
  }
  std::printf("\nVERIFIED for any number of mutators, in %.2fs.\n",
              R.Stats.Seconds);
  std::printf("inferred cardinality (paper: %s):\n", B.PaperCards.c_str());
  for (logic::Term S : R.SetBodies)
    std::printf("  #{t | %s}\n", logic::toString(S).c_str());
  std::printf("invariant atoms:\n");
  for (logic::Term A : R.Atoms)
    std::printf("  %s\n", logic::toString(A).c_str());
  return 0;
}
