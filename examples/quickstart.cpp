//===- examples/quickstart.cpp - The Sec. 3 increment program --------------------===//
//
// Part of sharpie. The paper's informal-overview example, built directly
// against the public API: an unbounded number of threads increment a
// shared counter a (initially 0); whenever some thread is past its
// increment, a must be positive. #Pi synthesizes the invariant
//
//     #{t | pc(t) >= 2} <= a
//
// automatically. This file shows the three layers a user touches:
// modeling (sys::ParamSystem), synthesis (synth::synthesize), and -- for
// illustration -- checking a *hand-written* invariant via the reduction
// pipeline (engine::reduceToGround), which is the paper's "invariant
// checking" half of Sec. 3.
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"
#include "logic/TermOps.h"
#include "synth/Synth.h"
#include "system/System.h"

#include <cstdio>

using namespace sharpie;
using logic::Sort;
using logic::Term;

int main() {
  logic::TermManager M;

  // -- Model the program of paper Sec. 3 -------------------------------------
  //
  //   global int a = 0;
  //   1: a++;
  //   2:
  sys::ParamSystem S(M, "increment");
  Term A = S.addGlobal("a");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("t", Sort::Tid);

  S.setInit(M.mkAnd(M.mkEq(A, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  sys::Transition &Inc = S.addTransition("inc", M.mkEq(S.my(PC), M.mkInt(1)));
  Inc.GlobalUpd[A] = M.mkAdd(A, M.mkInt(1));
  Inc.LocalUpd[PC] = M.mkInt(2);
  S.setSafe(M.mkForall({T}, M.mkImplies(M.mkGt(M.mkRead(PC, T), M.mkInt(1)),
                                        M.mkGt(A, M.mkInt(0)))));
  S.CustomInit = [&](int64_t N) {
    sys::ParamSystem::State St;
    St.DomainSize = N;
    St.Scalars[A] = 0;
    St.Arrays[PC] = std::vector<int64_t>(static_cast<size_t>(N), 1);
    return std::vector<sys::ParamSystem::State>{St};
  };

  // -- Part 1: check a hand-written invariant (Sec. 3, "Invariant Checking") --
  Term Inv = M.mkLe(M.mkCard(T, M.mkGe(M.mkRead(PC, T), M.mkInt(2))), A);
  std::printf("checking hand-written invariant  %s\n",
              logic::toString(Inv).c_str());
  std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
  bool AllValid = true;
  for (const sys::Obligation &O : sys::safetyObligations(S, Inv)) {
    engine::ReduceResult R = engine::reduceToGround(M, O.Psi, {}, Oracle.get());
    std::unique_ptr<smt::SmtSolver> Check = smt::makeZ3Solver(M);
    Check->add(R.Ground);
    bool Valid = Check->check() == smt::SatResult::Unsat;
    std::printf("  clause %-12s %s\n", O.Name.c_str(),
                Valid ? "valid" : "NOT valid");
    AllValid &= Valid;
  }
  if (!AllValid)
    return 1;

  // -- Part 2: synthesize the invariant from scratch (Sec. 3, "Invariant
  // Synthesis"): shape template with one set and no quantifiers. ------------
  synth::SynthOptions Opts;
  Opts.Shape = {1, {}};
  synth::SynthResult R = synth::synthesize(S, Opts);
  if (!R.Verified) {
    std::printf("synthesis failed: %s\n", R.Note.c_str());
    return 1;
  }
  std::printf("\nsynthesized in %.2fs:\n  set: #{t | %s}\n",
              R.Stats.Seconds, logic::toString(R.SetBodies[0]).c_str());
  for (Term Atom : R.Atoms)
    std::printf("  inv0 atom: %s\n", logic::toString(Atom).c_str());
  std::printf("closed invariant: %s\n", logic::toString(R.Invariant).c_str());
  return 0;
}
