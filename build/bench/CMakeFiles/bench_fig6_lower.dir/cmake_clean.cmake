file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lower.dir/bench_fig6_lower.cpp.o"
  "CMakeFiles/bench_fig6_lower.dir/bench_fig6_lower.cpp.o.d"
  "bench_fig6_lower"
  "bench_fig6_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
