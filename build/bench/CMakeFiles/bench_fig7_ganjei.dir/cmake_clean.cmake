file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ganjei.dir/bench_fig7_ganjei.cpp.o"
  "CMakeFiles/bench_fig7_ganjei.dir/bench_fig7_ganjei.cpp.o.d"
  "bench_fig7_ganjei"
  "bench_fig7_ganjei.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ganjei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
