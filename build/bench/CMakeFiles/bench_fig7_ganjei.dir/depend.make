# Empty dependencies file for bench_fig7_ganjei.
# This may be replaced when dependencies are built.
