file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_lower.dir/bench_fig9_lower.cpp.o"
  "CMakeFiles/bench_fig9_lower.dir/bench_fig9_lower.cpp.o.d"
  "bench_fig9_lower"
  "bench_fig9_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
