# Empty dependencies file for bench_fig9_lower.
# This may be replaced when dependencies are built.
