file(REMOVE_RECURSE
  "CMakeFiles/bench_axioms.dir/bench_axioms.cpp.o"
  "CMakeFiles/bench_axioms.dir/bench_axioms.cpp.o.d"
  "bench_axioms"
  "bench_axioms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_axioms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
