# Empty dependencies file for bench_axioms.
# This may be replaced when dependencies are built.
