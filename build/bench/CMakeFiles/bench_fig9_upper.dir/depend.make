# Empty dependencies file for bench_fig9_upper.
# This may be replaced when dependencies are built.
