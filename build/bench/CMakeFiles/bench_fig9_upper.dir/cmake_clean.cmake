file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_upper.dir/bench_fig9_upper.cpp.o"
  "CMakeFiles/bench_fig9_upper.dir/bench_fig9_upper.cpp.o.d"
  "bench_fig9_upper"
  "bench_fig9_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
