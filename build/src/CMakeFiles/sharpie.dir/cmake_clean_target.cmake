file(REMOVE_RECURSE
  "libsharpie.a"
)
