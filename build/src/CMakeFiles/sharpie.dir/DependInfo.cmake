
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/CounterAbs.cpp" "src/CMakeFiles/sharpie.dir/baselines/CounterAbs.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/baselines/CounterAbs.cpp.o.d"
  "/root/repo/src/baselines/IntervalAI.cpp" "src/CMakeFiles/sharpie.dir/baselines/IntervalAI.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/baselines/IntervalAI.cpp.o.d"
  "/root/repo/src/card/Card.cpp" "src/CMakeFiles/sharpie.dir/card/Card.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/card/Card.cpp.o.d"
  "/root/repo/src/engine/Reduce.cpp" "src/CMakeFiles/sharpie.dir/engine/Reduce.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/engine/Reduce.cpp.o.d"
  "/root/repo/src/explicit/Explicit.cpp" "src/CMakeFiles/sharpie.dir/explicit/Explicit.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/explicit/Explicit.cpp.o.d"
  "/root/repo/src/logic/Eval.cpp" "src/CMakeFiles/sharpie.dir/logic/Eval.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/logic/Eval.cpp.o.d"
  "/root/repo/src/logic/Term.cpp" "src/CMakeFiles/sharpie.dir/logic/Term.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/logic/Term.cpp.o.d"
  "/root/repo/src/logic/TermOps.cpp" "src/CMakeFiles/sharpie.dir/logic/TermOps.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/logic/TermOps.cpp.o.d"
  "/root/repo/src/protocols/Bakery.cpp" "src/CMakeFiles/sharpie.dir/protocols/Bakery.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/protocols/Bakery.cpp.o.d"
  "/root/repo/src/protocols/Basic.cpp" "src/CMakeFiles/sharpie.dir/protocols/Basic.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/protocols/Basic.cpp.o.d"
  "/root/repo/src/protocols/CaseStudies.cpp" "src/CMakeFiles/sharpie.dir/protocols/CaseStudies.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/protocols/CaseStudies.cpp.o.d"
  "/root/repo/src/protocols/Ganjei.cpp" "src/CMakeFiles/sharpie.dir/protocols/Ganjei.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/protocols/Ganjei.cpp.o.d"
  "/root/repo/src/protocols/Sanchez.cpp" "src/CMakeFiles/sharpie.dir/protocols/Sanchez.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/protocols/Sanchez.cpp.o.d"
  "/root/repo/src/protocols/TreeGc.cpp" "src/CMakeFiles/sharpie.dir/protocols/TreeGc.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/protocols/TreeGc.cpp.o.d"
  "/root/repo/src/quant/Quant.cpp" "src/CMakeFiles/sharpie.dir/quant/Quant.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/quant/Quant.cpp.o.d"
  "/root/repo/src/smt/MiniSolver.cpp" "src/CMakeFiles/sharpie.dir/smt/MiniSolver.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/smt/MiniSolver.cpp.o.d"
  "/root/repo/src/smt/Simplex.cpp" "src/CMakeFiles/sharpie.dir/smt/Simplex.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/smt/Simplex.cpp.o.d"
  "/root/repo/src/smt/Z3Solver.cpp" "src/CMakeFiles/sharpie.dir/smt/Z3Solver.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/smt/Z3Solver.cpp.o.d"
  "/root/repo/src/synth/Grammar.cpp" "src/CMakeFiles/sharpie.dir/synth/Grammar.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/synth/Grammar.cpp.o.d"
  "/root/repo/src/synth/Synth.cpp" "src/CMakeFiles/sharpie.dir/synth/Synth.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/synth/Synth.cpp.o.d"
  "/root/repo/src/system/System.cpp" "src/CMakeFiles/sharpie.dir/system/System.cpp.o" "gcc" "src/CMakeFiles/sharpie.dir/system/System.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
