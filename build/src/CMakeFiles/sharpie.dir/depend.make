# Empty dependencies file for sharpie.
# This may be replaced when dependencies are built.
