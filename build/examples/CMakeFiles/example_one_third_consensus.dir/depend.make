# Empty dependencies file for example_one_third_consensus.
# This may be replaced when dependencies are built.
