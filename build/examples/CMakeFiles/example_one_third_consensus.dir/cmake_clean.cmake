file(REMOVE_RECURSE
  "CMakeFiles/example_one_third_consensus.dir/one_third_consensus.cpp.o"
  "CMakeFiles/example_one_third_consensus.dir/one_third_consensus.cpp.o.d"
  "example_one_third_consensus"
  "example_one_third_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_one_third_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
