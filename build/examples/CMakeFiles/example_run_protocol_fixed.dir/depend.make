# Empty dependencies file for example_run_protocol_fixed.
# This may be replaced when dependencies are built.
