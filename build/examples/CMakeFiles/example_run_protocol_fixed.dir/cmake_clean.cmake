file(REMOVE_RECURSE
  "CMakeFiles/example_run_protocol_fixed.dir/run_protocol_fixed.cpp.o"
  "CMakeFiles/example_run_protocol_fixed.dir/run_protocol_fixed.cpp.o.d"
  "example_run_protocol_fixed"
  "example_run_protocol_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_run_protocol_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
