file(REMOVE_RECURSE
  "CMakeFiles/example_ticket_lock.dir/ticket_lock.cpp.o"
  "CMakeFiles/example_ticket_lock.dir/ticket_lock.cpp.o.d"
  "example_ticket_lock"
  "example_ticket_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ticket_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
