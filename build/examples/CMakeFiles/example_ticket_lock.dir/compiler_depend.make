# Empty compiler generated dependencies file for example_ticket_lock.
# This may be replaced when dependencies are built.
