file(REMOVE_RECURSE
  "CMakeFiles/example_run_protocol.dir/run_protocol.cpp.o"
  "CMakeFiles/example_run_protocol.dir/run_protocol.cpp.o.d"
  "example_run_protocol"
  "example_run_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_run_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
