# Empty compiler generated dependencies file for example_run_protocol.
# This may be replaced when dependencies are built.
