file(REMOVE_RECURSE
  "CMakeFiles/example_garbage_collection.dir/garbage_collection.cpp.o"
  "CMakeFiles/example_garbage_collection.dir/garbage_collection.cpp.o.d"
  "example_garbage_collection"
  "example_garbage_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_garbage_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
