# Empty dependencies file for example_garbage_collection.
# This may be replaced when dependencies are built.
