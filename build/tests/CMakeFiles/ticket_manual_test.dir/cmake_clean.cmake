file(REMOVE_RECURSE
  "CMakeFiles/ticket_manual_test.dir/ticket_manual_test.cpp.o"
  "CMakeFiles/ticket_manual_test.dir/ticket_manual_test.cpp.o.d"
  "ticket_manual_test"
  "ticket_manual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_manual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
