# Empty compiler generated dependencies file for ticket_manual_test.
# This may be replaced when dependencies are built.
