# Empty dependencies file for synth_basic_test.
# This may be replaced when dependencies are built.
