file(REMOVE_RECURSE
  "CMakeFiles/synth_basic_test.dir/synth_basic_test.cpp.o"
  "CMakeFiles/synth_basic_test.dir/synth_basic_test.cpp.o.d"
  "synth_basic_test"
  "synth_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
