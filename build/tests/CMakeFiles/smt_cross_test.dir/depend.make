# Empty dependencies file for smt_cross_test.
# This may be replaced when dependencies are built.
