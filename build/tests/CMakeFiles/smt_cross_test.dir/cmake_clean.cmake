file(REMOVE_RECURSE
  "CMakeFiles/smt_cross_test.dir/smt_cross_test.cpp.o"
  "CMakeFiles/smt_cross_test.dir/smt_cross_test.cpp.o.d"
  "smt_cross_test"
  "smt_cross_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_cross_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
