file(REMOVE_RECURSE
  "CMakeFiles/synth_casestudies_test.dir/synth_casestudies_test.cpp.o"
  "CMakeFiles/synth_casestudies_test.dir/synth_casestudies_test.cpp.o.d"
  "synth_casestudies_test"
  "synth_casestudies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_casestudies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
