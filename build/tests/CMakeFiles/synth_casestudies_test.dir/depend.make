# Empty dependencies file for synth_casestudies_test.
# This may be replaced when dependencies are built.
