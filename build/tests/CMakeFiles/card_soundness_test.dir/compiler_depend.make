# Empty compiler generated dependencies file for card_soundness_test.
# This may be replaced when dependencies are built.
