file(REMOVE_RECURSE
  "CMakeFiles/card_soundness_test.dir/card_soundness_test.cpp.o"
  "CMakeFiles/card_soundness_test.dir/card_soundness_test.cpp.o.d"
  "card_soundness_test"
  "card_soundness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/card_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
