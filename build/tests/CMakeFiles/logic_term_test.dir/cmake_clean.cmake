file(REMOVE_RECURSE
  "CMakeFiles/logic_term_test.dir/logic_term_test.cpp.o"
  "CMakeFiles/logic_term_test.dir/logic_term_test.cpp.o.d"
  "logic_term_test"
  "logic_term_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_term_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
