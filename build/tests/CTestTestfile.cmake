# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(card_soundness_test "/root/repo/build/tests/card_soundness_test")
set_tests_properties(card_soundness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(explicit_test "/root/repo/build/tests/explicit_test")
set_tests_properties(explicit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(grammar_test "/root/repo/build/tests/grammar_test")
set_tests_properties(grammar_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(logic_term_test "/root/repo/build/tests/logic_term_test")
set_tests_properties(logic_term_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(quant_test "/root/repo/build/tests/quant_test")
set_tests_properties(quant_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(reduce_test "/root/repo/build/tests/reduce_test")
set_tests_properties(reduce_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simplex_test "/root/repo/build/tests/simplex_test")
set_tests_properties(simplex_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smt_cross_test "/root/repo/build/tests/smt_cross_test")
set_tests_properties(smt_cross_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(synth_basic_test "/root/repo/build/tests/synth_basic_test")
set_tests_properties(synth_basic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(synth_casestudies_test "/root/repo/build/tests/synth_casestudies_test")
set_tests_properties(synth_casestudies_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(system_test "/root/repo/build/tests/system_test")
set_tests_properties(system_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ticket_manual_test "/root/repo/build/tests/ticket_manual_test")
set_tests_properties(ticket_manual_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
