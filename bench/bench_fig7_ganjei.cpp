//===- bench/bench_fig7_ganjei.cpp - Paper Figure 7 -----------------------------===//
//
// Part of sharpie. Reproduces Fig. 7: the comparison with [Ganjei et al.
// 2015] on twelve barrier/lock benchmarks, half of them buggy. The paper's
// comparator timings (PACMAN) are reprinted from the paper; see
// bench_baselines for our own counter-abstraction stand-in.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace sharpie;
using namespace sharpie::bench;

int main() {
  using logic::TermManager;
  std::vector<RowResult> Rows;
  auto Run = [&](const char *Name, bool Flag,
                 protocols::ProtocolBundle (*Make)(TermManager &, bool)) {
    Rows.push_back(runBundle(
        Name, [&](TermManager &M) { return Make(M, Flag); }));
  };
  Run("max", true, protocols::makeMax);
  Run("max-nobar", false, protocols::makeMax);
  Run("reader/writer", true, protocols::makeReaderWriter);
  Run("reader/writer-bug", false, protocols::makeReaderWriter);
  Run("parent/child", true, protocols::makeParentChild);
  Run("parent/child-nobar", false, protocols::makeParentChild);
  Run("simp-bar", true, protocols::makeSimpBar);
  Run("simp-nobar", false, protocols::makeSimpBar);
  Run("dyn-barrier", true, protocols::makeDynBarrier);
  Run("dyn-barrier-nobar", false, protocols::makeDynBarrier);
  Run("as-many", true, protocols::makeAsMany);
  Run("as-many-bug", false, protocols::makeAsMany);
  printTable("Figure 7: comparison with [Ganjei et al. 2015]", Rows,
             "PACMAN (paper)");
  return 0;
}
