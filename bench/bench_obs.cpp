//===- bench/bench_obs.cpp - Tracing overhead micro-benchmarks ------------------===//
//
// Part of sharpie. Guards the obs layer's two cost promises (src/obs/Obs.h):
//
//   * disabled path: with no tracer configured every instrumentation site
//     is one null-pointer branch -- no allocation, no lock, no clock read.
//     BM_DisabledSpan/BM_DisabledLogf should sit within noise of
//     BM_BareLoop (sub-nanosecond per site);
//   * enabled metrics without events: counters and samples stay cheap
//     (thread-local map updates, no event buffering, no lock);
//   * end to end: a serial increment synthesis with tracing off vs. fully
//     on. The ISSUE-3 acceptance gate ("tracing disabled costs within
//     measurement noise on the BENCH_PR2 sweep") is the first pair.
//
//===----------------------------------------------------------------------===//

#include "obs/Flight.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "protocols/Protocols.h"

#include <benchmark/benchmark.h>

using namespace sharpie;

namespace {

// Baseline: the loop and DoNotOptimize overhead by itself.
void BM_BareLoop(benchmark::State &State) {
  int X = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(++X);
}
BENCHMARK(BM_BareLoop);

// One span + one counter + one histogram sample against a null buffer --
// the exact shape of an instrumented pipeline site with tracing off.
void BM_DisabledSpan(benchmark::State &State) {
  obs::TraceBuffer *TB = nullptr;
  int X = 0;
  for (auto _ : State) {
    obs::Span Sp(TB, "site", [] { return std::string("never rendered"); });
    if (TB) {
      TB->counter("n", 1);
      TB->sample("ms", 1.0);
    }
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_DisabledSpan);

// The log macro with a deliberately expensive argument: the string must
// not be built when the buffer is null.
void BM_DisabledLogf(benchmark::State &State) {
  obs::TraceBuffer *TB = nullptr;
  int X = 0;
  for (auto _ : State) {
    SHARPIE_LOGF(TB, obs::LogLevel::Debug, "%s",
                 std::string(1024, 'x').c_str());
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_DisabledLogf);

// Metrics-only tracer (no event collection, quiet log): what --stats costs.
void BM_MetricsOnlySite(benchmark::State &State) {
  obs::Tracer T;
  obs::TraceBuffer *TB = T.worker(0);
  int X = 0;
  for (auto _ : State) {
    obs::Span Sp(TB, "site");
    TB->counter("n", 1);
    TB->sample("ms", 1.0);
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_MetricsOnlySite);

// Full event collection: what --trace-out costs per site.
void BM_EventsOnSite(benchmark::State &State) {
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  obs::Tracer T(Cfg);
  obs::TraceBuffer *TB = T.worker(0);
  int X = 0;
  for (auto _ : State) {
    obs::Span Sp(TB, "site", [] { return std::string("detail"); });
    TB->counter("n", 1);
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_EventsOnSite);

// End to end: one serial increment synthesis, untraced vs. fully traced.
// The untraced number is the one the BENCH_PR2 no-regression gate cares
// about; the traced one bounds the cost of --trace-out on a real run.
void runIncrementOnce(obs::Tracer *T) {
  logic::TermManager M;
  protocols::ProtocolBundle B = protocols::makeIncrement(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = 1;
  Opts.Trace = T;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  benchmark::DoNotOptimize(R.Verified);
}

void BM_SynthIncrementUntraced(benchmark::State &State) {
  for (auto _ : State)
    runIncrementOnce(nullptr);
}
BENCHMARK(BM_SynthIncrementUntraced)->Unit(benchmark::kMillisecond);

void BM_SynthIncrementTraced(benchmark::State &State) {
  for (auto _ : State) {
    obs::TracerConfig Cfg;
    Cfg.CollectEvents = true;
    obs::Tracer T(Cfg);
    runIncrementOnce(&T);
  }
}
BENCHMARK(BM_SynthIncrementTraced)->Unit(benchmark::kMillisecond);

// Registry aggregation: what the daemon pays once per finished request
// to fold a realistic MetricsSummary (a handful of counters, a few
// histograms) into the process-wide registry. Must stay microseconds --
// it runs on the request thread after the verdict.
void BM_RegistryRecord(benchmark::State &State) {
  obs::Tracer T;
  obs::TraceBuffer *TB = T.worker(0);
  for (int I = 0; I < 50; ++I) {
    TB->counter("smt_checks", 1);
    TB->counter("tuples_tried", 1);
    TB->sample("smt_ms", 0.5 + I);
    TB->sample("reduce_ms", 1.0 + I);
  }
  obs::MetricsSummary S = T.metrics();
  obs::MetricsRegistry R;
  for (auto _ : State) {
    R.record(obs::Outcome::Verified, obs::CacheTier::Cold, S, 0.25);
    benchmark::DoNotOptimize(R.recorded());
  }
}
BENCHMARK(BM_RegistryRecord);

// Flight-recorder capture: the per-request cost of retaining a full
// event stream (clip, account, evict) at the default limits.
void BM_FlightRecord(benchmark::State &State) {
  obs::FlightRecorder F({32, 4096, 96});
  uint64_t Id = 0;
  for (auto _ : State) {
    State.PauseTiming();
    obs::FlightRecord R;
    R.RequestId = ++Id;
    R.Outcome = "verified";
    for (int I = 0; I < 512; ++I) {
      obs::Event E;
      E.Kind = I % 2 ? obs::EventKind::SpanEnd : obs::EventKind::SpanBegin;
      E.Worker = 0;
      E.Name = "site";
      E.Detail = "detail text of plausible length for a span";
      E.TimeUs = I;
      R.Events.push_back(std::move(E));
    }
    State.ResumeTiming();
    F.record(std::move(R));
    benchmark::DoNotOptimize(F.approxBytes());
  }
}
BENCHMARK(BM_FlightRecord);

// A Prometheus scrape of a populated registry -- bounds the cost a
// monitoring poll imposes on the daemon.
void BM_PromScrape(benchmark::State &State) {
  obs::Tracer T;
  obs::TraceBuffer *TB = T.worker(0);
  for (int I = 0; I < 50; ++I) {
    TB->counter("smt_checks", 1);
    TB->sample("smt_ms", 0.5 + I);
  }
  obs::MetricsSummary S = T.metrics();
  obs::MetricsRegistry R;
  for (int I = 0; I < 100; ++I)
    R.record(obs::Outcome::Verified, obs::CacheTier::Cold, S, 0.25);
  std::vector<obs::PromGauge> G;
  G.push_back({"in_flight_requests", "help", 1, {}});
  for (auto _ : State) {
    std::string P = obs::renderProm(R.snapshot(), G);
    benchmark::DoNotOptimize(P.size());
  }
}
BENCHMARK(BM_PromScrape);

} // namespace

BENCHMARK_MAIN();
