//===- bench/bench_obs.cpp - Tracing overhead micro-benchmarks ------------------===//
//
// Part of sharpie. Guards the obs layer's two cost promises (src/obs/Obs.h):
//
//   * disabled path: with no tracer configured every instrumentation site
//     is one null-pointer branch -- no allocation, no lock, no clock read.
//     BM_DisabledSpan/BM_DisabledLogf should sit within noise of
//     BM_BareLoop (sub-nanosecond per site);
//   * enabled metrics without events: counters and samples stay cheap
//     (thread-local map updates, no event buffering, no lock);
//   * end to end: a serial increment synthesis with tracing off vs. fully
//     on. The ISSUE-3 acceptance gate ("tracing disabled costs within
//     measurement noise on the BENCH_PR2 sweep") is the first pair.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"
#include "protocols/Protocols.h"

#include <benchmark/benchmark.h>

using namespace sharpie;

namespace {

// Baseline: the loop and DoNotOptimize overhead by itself.
void BM_BareLoop(benchmark::State &State) {
  int X = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(++X);
}
BENCHMARK(BM_BareLoop);

// One span + one counter + one histogram sample against a null buffer --
// the exact shape of an instrumented pipeline site with tracing off.
void BM_DisabledSpan(benchmark::State &State) {
  obs::TraceBuffer *TB = nullptr;
  int X = 0;
  for (auto _ : State) {
    obs::Span Sp(TB, "site", [] { return std::string("never rendered"); });
    if (TB) {
      TB->counter("n", 1);
      TB->sample("ms", 1.0);
    }
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_DisabledSpan);

// The log macro with a deliberately expensive argument: the string must
// not be built when the buffer is null.
void BM_DisabledLogf(benchmark::State &State) {
  obs::TraceBuffer *TB = nullptr;
  int X = 0;
  for (auto _ : State) {
    SHARPIE_LOGF(TB, obs::LogLevel::Debug, "%s",
                 std::string(1024, 'x').c_str());
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_DisabledLogf);

// Metrics-only tracer (no event collection, quiet log): what --stats costs.
void BM_MetricsOnlySite(benchmark::State &State) {
  obs::Tracer T;
  obs::TraceBuffer *TB = T.worker(0);
  int X = 0;
  for (auto _ : State) {
    obs::Span Sp(TB, "site");
    TB->counter("n", 1);
    TB->sample("ms", 1.0);
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_MetricsOnlySite);

// Full event collection: what --trace-out costs per site.
void BM_EventsOnSite(benchmark::State &State) {
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  obs::Tracer T(Cfg);
  obs::TraceBuffer *TB = T.worker(0);
  int X = 0;
  for (auto _ : State) {
    obs::Span Sp(TB, "site", [] { return std::string("detail"); });
    TB->counter("n", 1);
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_EventsOnSite);

// End to end: one serial increment synthesis, untraced vs. fully traced.
// The untraced number is the one the BENCH_PR2 no-regression gate cares
// about; the traced one bounds the cost of --trace-out on a real run.
void runIncrementOnce(obs::Tracer *T) {
  logic::TermManager M;
  protocols::ProtocolBundle B = protocols::makeIncrement(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = 1;
  Opts.Trace = T;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  benchmark::DoNotOptimize(R.Verified);
}

void BM_SynthIncrementUntraced(benchmark::State &State) {
  for (auto _ : State)
    runIncrementOnce(nullptr);
}
BENCHMARK(BM_SynthIncrementUntraced)->Unit(benchmark::kMillisecond);

void BM_SynthIncrementTraced(benchmark::State &State) {
  for (auto _ : State) {
    obs::TracerConfig Cfg;
    Cfg.CollectEvents = true;
    obs::Tracer T(Cfg);
    runIncrementOnce(&T);
  }
}
BENCHMARK(BM_SynthIncrementTraced)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
