//===- bench/bench_fig9_lower.cpp - Paper Figure 9, lower table -------------------===//
//
// Part of sharpie. Reproduces the lower table of Fig. 9: comparison with
// [Sanchez et al. 2012] (interval / polytope / octagon timings reprinted
// from the paper). The robot swarm scales over grid sizes; the paper's
// tool times out on 4x4.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace sharpie;
using namespace sharpie::bench;

int main() {
  using logic::TermManager;
  std::vector<RowResult> Rows;
  Rows.push_back(runBundle("barrier", protocols::makeBarrier));
  Rows.push_back(runBundle("central barrier", protocols::makeCentralBarrier));
  Rows.push_back(runBundle("work stealing", protocols::makeWorkStealing));
  Rows.push_back(
      runBundle("dining philosophers", protocols::makeDiningPhilosophers));
  for (auto [R, C] : {std::pair<int, int>{2, 2}, {2, 3}, {3, 3}, {4, 4}}) {
    std::string Name =
        "robot " + std::to_string(R) + "x" + std::to_string(C);
    Rows.push_back(runBundle(Name,
                             [R = R, C = C](TermManager &M) {
                               return protocols::makeRobot(M, R, C);
                             },
                             /*TimeBudgetSeconds=*/120));
  }
  printTable("Figure 9 (lower): comparison with [Sanchez et al. 2012]", Rows,
             "I/P/O (paper)");
  return 0;
}
