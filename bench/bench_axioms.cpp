//===- bench/bench_axioms.cpp - Axiom instantiation micro-benchmarks ------------===//
//
// Part of sharpie. Google-benchmark micro-benchmarks of the reduction
// pipeline's moving parts (paper Sec. 5): axiom instantiation as the
// number of cardinality definitions grows, the Venn region enumeration,
// and the end-to-end reduction of the Sec. 3 / Sec. 5 worked examples.
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"
#include "logic/TermOps.h"

#include <benchmark/benchmark.h>

using namespace sharpie;
using logic::Sort;
using logic::Term;

namespace {

/// A formula with D cardinality sets over one array, pairwise comparable.
Term formulaWithDefs(logic::TermManager &M, int D) {
  Term F = M.mkVar("f", Sort::Array);
  Term T = M.mkVar("t", Sort::Tid);
  std::vector<Term> Conj;
  for (int I = 0; I < D; ++I) {
    Term K = M.mkVar("k" + std::to_string(I), Sort::Int);
    Conj.push_back(M.mkEq(
        M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(I))), K));
    Conj.push_back(M.mkLe(K, M.mkInt(5)));
  }
  return M.mkAnd(Conj);
}

void BM_ReduceScalesWithDefs(benchmark::State &State) {
  for (auto _ : State) {
    logic::TermManager M;
    Term Psi = formulaWithDefs(M, static_cast<int>(State.range(0)));
    std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
    engine::ReduceResult R = engine::reduceToGround(M, Psi, {}, Oracle.get());
    benchmark::DoNotOptimize(R.Ground);
  }
}
BENCHMARK(BM_ReduceScalesWithDefs)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_VennDecomposition(benchmark::State &State) {
  // Paper Sec. 5.2 Example 2 with a growing number of equality sets.
  for (auto _ : State) {
    logic::TermManager M;
    Term F = M.mkVar("f", Sort::Array);
    Term T = M.mkVar("t", Sort::Tid);
    Term N = M.mkVar("n", Sort::Int);
    std::vector<Term> Conj;
    for (int I = 0; I < State.range(0); ++I)
      Conj.push_back(M.mkGt(
          M.mkMul(M.mkInt(3),
                  M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(I)))),
          M.mkMul(M.mkInt(2), N)));
    engine::ReduceOptions Opts;
    Opts.Card.Venn = true;
    std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
    engine::ReduceResult R = engine::reduceToGround(
        M, M.mkAnd(Conj), Opts, Oracle.get(), {{N, M.mkTrue()}});
    benchmark::DoNotOptimize(R.Ground);
  }
}
BENCHMARK(BM_VennDecomposition)->Arg(2)->Arg(3)->Arg(4);

void BM_Section3IncrementCheck(benchmark::State &State) {
  // End-to-end validity check of the Sec. 3 invariant's inductiveness.
  for (auto _ : State) {
    logic::TermManager M;
    Term PC = M.mkVar("pc", Sort::Array);
    Term PCp = M.mkVar("pc'", Sort::Array);
    Term A = M.mkVar("a", Sort::Int);
    Term Ap = M.mkVar("a'", Sort::Int);
    Term T = M.mkVar("t", Sort::Tid);
    Term Mover = M.mkVar("mv", Sort::Tid);
    auto Inv = [&](Term Arr, Term S) {
      return M.mkLe(M.mkCard(T, M.mkGe(M.mkRead(Arr, T), M.mkInt(2))), S);
    };
    Term Psi = M.mkAnd(
        {Inv(PC, A), M.mkEq(M.mkRead(PC, Mover), M.mkInt(1)),
         M.mkEq(PCp, M.mkStore(PC, Mover, M.mkInt(2))),
         M.mkEq(Ap, M.mkAdd(A, M.mkInt(1))), M.mkNot(Inv(PCp, Ap))});
    std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
    engine::ReduceResult R = engine::reduceToGround(M, Psi, {}, Oracle.get());
    std::unique_ptr<smt::SmtSolver> S = smt::makeZ3Solver(M);
    S->add(R.Ground);
    benchmark::DoNotOptimize(S->check());
  }
}
BENCHMARK(BM_Section3IncrementCheck);

void BM_MiniSolverVsZ3(benchmark::State &State) {
  // The same ground formula through both back ends (label selects which).
  logic::TermManager M;
  Term X = M.mkVar("x", Sort::Int);
  Term Y = M.mkVar("y", Sort::Int);
  Term Z = M.mkVar("z", Sort::Int);
  Term Phi = M.mkAnd(
      {M.mkLe(M.mkAdd(X, Y), M.mkInt(10)), M.mkLe(M.mkAdd(Y, Z), M.mkInt(7)),
       M.mkOr(M.mkGe(X, M.mkInt(5)), M.mkGe(Z, M.mkInt(5))),
       M.mkEq(M.mkAdd({X, Y, Z}), M.mkInt(12))});
  bool UseMini = State.range(0) == 1;
  for (auto _ : State) {
    std::unique_ptr<smt::SmtSolver> S =
        UseMini ? smt::makeMiniSolver(M) : smt::makeZ3Solver(M);
    S->add(Phi);
    benchmark::DoNotOptimize(S->check());
  }
}
BENCHMARK(BM_MiniSolverVsZ3)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
