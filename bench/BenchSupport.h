//===- bench/BenchSupport.h - Table harness for the evaluation -*- C++ -*-===//
//
// Part of sharpie. Shared driver for the figure-reproduction benchmarks:
// runs #Pi on each protocol bundle of a table and prints the rows the
// paper reports (program, property, inferred cardinalities, time) with the
// paper's numbers alongside. Absolute timings are machine-dependent; the
// shape (which rows verify, which rows are buggy, relative effort) is the
// reproduction target (see EXPERIMENTS.md).
//
// Two environment variables make the harness scriptable (tools/sweep.sh):
//   SHARPIE_WORKERS     worker count for the parallel search (default 1,
//                       "max" = one per hardware thread);
//   SHARPIE_BENCH_JSON  path to append one JSON line per row to, carrying
//                       the verdict, timings, and SynthStats counters.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_BENCH_BENCHSUPPORT_H
#define SHARPIE_BENCH_BENCHSUPPORT_H

#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace sharpie {
namespace bench {

struct RowResult {
  std::string Name;
  bool Expected = true;   ///< ExpectSafe of the bundle.
  bool Verified = false;
  bool FoundCex = false;
  double Seconds = 0;
  std::string Cards;      ///< Inferred cardinalities (ours).
  std::string PaperTime;
  std::string ComparatorTime;
  synth::SynthStats Stats;
};

/// Worker count for bench runs: SHARPIE_WORKERS (number, or "max" for one
/// per hardware thread). Defaults to 1 so timing baselines stay serial
/// unless a sweep asks otherwise.
inline unsigned benchWorkers() {
  const char *Env = std::getenv("SHARPIE_WORKERS");
  if (!Env || !*Env)
    return 1;
  if (std::strcmp(Env, "max") == 0)
    return 0; // SynthOptions: 0 = hardware concurrency.
  long V = std::strtol(Env, nullptr, 10);
  return V > 0 ? static_cast<unsigned>(V) : 1;
}

inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// Appends one machine-readable line for \p Row to $SHARPIE_BENCH_JSON, if
/// set. One self-contained JSON object per line (JSONL), so concurrent
/// tables can share a file and jq/python can stream it.
inline void emitJsonRow(const RowResult &Row) {
  const char *Path = std::getenv("SHARPIE_BENCH_JSON");
  if (!Path || !*Path)
    return;
  std::FILE *Fp = std::fopen(Path, "a");
  if (!Fp)
    return;
  const synth::SynthStats &S = Row.Stats;
  std::fprintf(
      Fp,
      "{\"protocol\":\"%s\",\"workers\":%u,\"expected_safe\":%s,"
      "\"verified\":%s,\"found_cex\":%s,\"seconds\":%.3f,"
      "\"tuples_tried\":%u,\"smt_checks\":%u,\"cache_hits\":%u,"
      "\"cache_misses\":%u,\"worker_utilization\":%.3f,"
      "\"prefilter_seconds\":%.3f,\"reduce_seconds\":%.3f,"
      "\"houdini_seconds\":%.3f,\"recheck_seconds\":%.3f,"
      "\"cards\":\"%s\"}\n",
      jsonEscape(Row.Name).c_str(), S.NumWorkers,
      Row.Expected ? "true" : "false", Row.Verified ? "true" : "false",
      Row.FoundCex ? "true" : "false", Row.Seconds, S.TuplesTried,
      S.SmtChecks, S.CacheHits, S.CacheMisses, S.WorkerUtilization,
      S.PrefilterSeconds, S.ReduceSeconds, S.HoudiniSeconds,
      S.RecheckSeconds, jsonEscape(Row.Cards).c_str());
  std::fclose(Fp);
}

inline RowResult runBundle(const std::string &Name,
                           const protocols::BundleFactory &Make,
                           double TimeBudgetSeconds = 180) {
  logic::TermManager M;
  protocols::ProtocolBundle B = Make(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.TimeBudgetSeconds = TimeBudgetSeconds;
  Opts.NumWorkers = benchWorkers();
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);

  RowResult Row;
  Row.Name = Name;
  Row.Expected = B.ExpectSafe;
  Row.Verified = R.Verified;
  Row.FoundCex = R.Cex.has_value();
  Row.Seconds = R.Stats.Seconds;
  Row.PaperTime = B.PaperTime;
  Row.ComparatorTime = B.ComparatorTime;
  Row.Stats = R.Stats;
  for (size_t I = 0; I < R.SetBodies.size(); ++I) {
    if (I)
      Row.Cards += ", ";
    Row.Cards += "#{t | " + logic::toString(R.SetBodies[I]) + "}";
  }
  if (Row.Cards.empty())
    Row.Cards = "-";
  emitJsonRow(Row);
  return Row;
}

inline void printTable(const std::string &Title,
                       const std::vector<RowResult> &Rows,
                       const char *ComparatorLabel = nullptr) {
  std::printf("\n== %s ==\n", Title.c_str());
  std::printf("%-22s %-9s %-8s %-9s %-9s", "Program", "Result", "OK?",
              "Time", "Paper");
  if (ComparatorLabel)
    std::printf(" %-18s", ComparatorLabel);
  std::printf("  Inferred cardinalities\n");
  unsigned Ok = 0;
  for (const RowResult &R : Rows) {
    const char *Result = R.Verified ? "safe" : (R.FoundCex ? "cex" : "fail");
    bool AsExpected = R.Expected ? R.Verified : R.FoundCex;
    Ok += AsExpected;
    char Time[32];
    std::snprintf(Time, sizeof(Time), "%.2fs", R.Seconds);
    std::printf("%-22s %-9s %-8s %-9s %-9s", R.Name.c_str(), Result,
                AsExpected ? "yes" : "NO", Time,
                R.PaperTime.empty() ? "-" : R.PaperTime.c_str());
    if (ComparatorLabel)
      std::printf(" %-18s",
                  R.ComparatorTime.empty() ? "-" : R.ComparatorTime.c_str());
    std::printf("  %s\n", R.Cards.c_str());
  }
  std::printf("%u/%zu rows match the paper's verdict\n", Ok, Rows.size());
}

} // namespace bench
} // namespace sharpie

#endif // SHARPIE_BENCH_BENCHSUPPORT_H
