//===- bench/BenchSupport.h - Table harness for the evaluation -*- C++ -*-===//
//
// Part of sharpie. Shared driver for the figure-reproduction benchmarks:
// runs #Pi on each protocol bundle of a table and prints the rows the
// paper reports (program, property, inferred cardinalities, time) with the
// paper's numbers alongside. Absolute timings are machine-dependent; the
// shape (which rows verify, which rows are buggy, relative effort) is the
// reproduction target (see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_BENCH_BENCHSUPPORT_H
#define SHARPIE_BENCH_BENCHSUPPORT_H

#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <cstdio>
#include <string>
#include <vector>

namespace sharpie {
namespace bench {

struct RowResult {
  std::string Name;
  bool Expected = true;   ///< ExpectSafe of the bundle.
  bool Verified = false;
  bool FoundCex = false;
  double Seconds = 0;
  std::string Cards;      ///< Inferred cardinalities (ours).
  std::string PaperTime;
  std::string ComparatorTime;
};

inline RowResult runBundle(const std::string &Name,
                           const protocols::BundleFactory &Make,
                           double TimeBudgetSeconds = 180) {
  logic::TermManager M;
  protocols::ProtocolBundle B = Make(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.TimeBudgetSeconds = TimeBudgetSeconds;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);

  RowResult Row;
  Row.Name = Name;
  Row.Expected = B.ExpectSafe;
  Row.Verified = R.Verified;
  Row.FoundCex = R.Cex.has_value();
  Row.Seconds = R.Stats.Seconds;
  Row.PaperTime = B.PaperTime;
  Row.ComparatorTime = B.ComparatorTime;
  for (size_t I = 0; I < R.SetBodies.size(); ++I) {
    if (I)
      Row.Cards += ", ";
    Row.Cards += "#{t | " + logic::toString(R.SetBodies[I]) + "}";
  }
  if (Row.Cards.empty())
    Row.Cards = "-";
  return Row;
}

inline void printTable(const std::string &Title,
                       const std::vector<RowResult> &Rows,
                       const char *ComparatorLabel = nullptr) {
  std::printf("\n== %s ==\n", Title.c_str());
  std::printf("%-22s %-9s %-8s %-9s %-9s", "Program", "Result", "OK?",
              "Time", "Paper");
  if (ComparatorLabel)
    std::printf(" %-18s", ComparatorLabel);
  std::printf("  Inferred cardinalities\n");
  unsigned Ok = 0;
  for (const RowResult &R : Rows) {
    const char *Result = R.Verified ? "safe" : (R.FoundCex ? "cex" : "fail");
    bool AsExpected = R.Expected ? R.Verified : R.FoundCex;
    Ok += AsExpected;
    char Time[32];
    std::snprintf(Time, sizeof(Time), "%.2fs", R.Seconds);
    std::printf("%-22s %-9s %-8s %-9s %-9s", R.Name.c_str(), Result,
                AsExpected ? "yes" : "NO", Time,
                R.PaperTime.empty() ? "-" : R.PaperTime.c_str());
    if (ComparatorLabel)
      std::printf(" %-18s",
                  R.ComparatorTime.empty() ? "-" : R.ComparatorTime.c_str());
    std::printf("  %s\n", R.Cards.c_str());
  }
  std::printf("%u/%zu rows match the paper's verdict\n", Ok, Rows.size());
}

} // namespace bench
} // namespace sharpie

#endif // SHARPIE_BENCH_BENCHSUPPORT_H
