//===- bench/bench_fig6_lower.cpp - Paper Figure 6, lower table ----------------===//
//
// Part of sharpie. Reproduces the lower table of Fig. 6: the three case
// studies of Sec. 2 (ticket lock, filter lock, one-third rule), all of
// which exercise the Venn decomposition of Sec. 5.2.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace sharpie;
using namespace sharpie::bench;

int main() {
  std::vector<RowResult> Rows;
  Rows.push_back(runBundle("ticket lock", protocols::makeTicketLock));
  Rows.push_back(runBundle("filter lock", protocols::makeFilterLock));
  Rows.push_back(runBundle("one-third rule", protocols::makeOneThird));
  printTable("Figure 6 (lower): case studies", Rows);
  return 0;
}
