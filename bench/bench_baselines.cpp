//===- bench/bench_baselines.cpp - Our comparator implementations ------------------===//
//
// Part of sharpie. Runs the two from-scratch baseline verifiers on the
// benchmarks of their respective comparisons: the counter-abstraction
// model checker (the paper's Fig. 7 comparator stands in for PACMAN) and
// the interval abstract interpreter (the Fig. 9 I-column stand-in).
// Expected shape per the paper: the baselines verify the simple barrier
// benchmarks but track every location counter eagerly and support no
// quantified invariants, so they give up where #Pi does not.
//
//===----------------------------------------------------------------------===//

#include "baselines/CounterAbs.h"
#include "baselines/IntervalAI.h"
#include "protocols/Protocols.h"

#include <cstdio>

using namespace sharpie;
using protocols::ProtocolBundle;

int main() {
  using logic::TermManager;
  struct Row {
    const char *Name;
    protocols::BundleFactory Make;
  };
  std::vector<Row> Fig7 = {
      {"max", [](TermManager &M) { return protocols::makeMax(M, true); }},
      {"reader/writer",
       [](TermManager &M) { return protocols::makeReaderWriter(M, true); }},
      {"parent/child",
       [](TermManager &M) { return protocols::makeParentChild(M, true); }},
      {"simp-bar",
       [](TermManager &M) { return protocols::makeSimpBar(M, true); }},
      {"dyn-barrier",
       [](TermManager &M) { return protocols::makeDynBarrier(M, true); }},
      {"as-many",
       [](TermManager &M) { return protocols::makeAsMany(M, true); }},
  };
  std::printf("== Counter-abstraction baseline (Fig. 7 comparator) ==\n");
  std::printf("%-18s %-12s %-10s %-8s %s\n", "Program", "Verdict", "AbsStates",
              "Time", "Note");
  for (const Row &R : Fig7) {
    TermManager M;
    ProtocolBundle B = R.Make(M);
    baselines::CounterAbsResult CR =
        baselines::checkByCounterAbstraction(*B.Sys);
    const char *V = CR.Verdict == baselines::CounterVerdict::Safe ? "safe"
                    : CR.Verdict == baselines::CounterVerdict::Unknown
                        ? "unknown"
                        : "unsupported";
    std::printf("%-18s %-12s %-10u %-8.2f %s\n", R.Name, V,
                CR.NumAbstractStates, CR.Seconds, CR.Note.c_str());
  }

  std::vector<Row> Fig9 = {
      {"barrier", protocols::makeBarrier},
      {"central barrier", protocols::makeCentralBarrier},
      {"work stealing", protocols::makeWorkStealing},
      {"dining philosophers", protocols::makeDiningPhilosophers},
      {"tree traverse", protocols::makeTreeTraverse},
  };
  std::printf("\n== Interval-AI baseline (Fig. 9 I-column stand-in) ==\n");
  std::printf("%-20s %-12s %-8s %-6s %s\n", "Program", "Verdict", "Classes",
              "Iter", "Note");
  for (const Row &R : Fig9) {
    TermManager M;
    ProtocolBundle B = R.Make(M);
    baselines::IntervalAIResult IR = baselines::checkByIntervalAI(*B.Sys);
    const char *V = IR.Verdict == baselines::IntervalVerdict::Safe ? "safe"
                    : IR.Verdict == baselines::IntervalVerdict::Unknown
                        ? "unknown"
                        : "unsupported";
    std::printf("%-20s %-12s %-8u %-6u %s\n", R.Name, V, IR.NumClasses,
                IR.NumIterations, IR.Note.c_str());
  }
  return 0;
}
