//===- bench/bench_fig6_upper.cpp - Paper Figure 6, upper table ----------------===//
//
// Part of sharpie. Reproduces the upper table of Fig. 6: cardinality-based
// reasoning on the examples from [Farzan et al. 2014] plus the cache and
// garbage-collection case studies.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace sharpie;
using namespace sharpie::bench;

int main() {
  std::vector<RowResult> Rows;
  Rows.push_back(runBundle("intro", protocols::makeIntro));
  Rows.push_back(runBundle("bluetooth", protocols::makeBluetooth));
  Rows.push_back(runBundle("tree traverse", protocols::makeTreeTraverse));
  Rows.push_back(runBundle("cache", protocols::makeCache));
  Rows.push_back(
      runBundle("garbage collection", protocols::makeGarbageCollection));
  printTable("Figure 6 (upper): cardinality-based reasoning", Rows);
  return 0;
}
