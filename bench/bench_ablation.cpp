//===- bench/bench_ablation.cpp - Design-choice ablations -------------------------===//
//
// Part of sharpie. Ablation runs for the design choices DESIGN.md calls
// out: (i) Venn decomposition on/off (paper Sec. 5.2 says the lower Fig. 6
// table needs it), (ii) the explicit-state pre-filter on/off, and
// (iii) the update axiom on/off (paper Sec. 5.1 / Theorem 2). Each cell
// reports verified? + time on the three Sec. 2 case studies and one
// representative Fig. 7 benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace sharpie;
using namespace sharpie::bench;
using protocols::ProtocolBundle;

namespace {

struct Cell {
  bool Verified;
  double Seconds;
};

Cell runWith(const protocols::BundleFactory &Make, bool Venn, bool Prefilter,
             bool UpdateAxiom) {
  logic::TermManager M;
  ProtocolBundle B = Make(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = Venn && B.NeedsVenn;
  Opts.Reduce.Card.Update = UpdateAxiom;
  Opts.Explicit = B.Explicit;
  Opts.ExplicitPrefilter = Prefilter;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  return {R.Verified, R.Stats.Seconds};
}

} // namespace

int main() {
  struct Named {
    const char *Name;
    protocols::BundleFactory Make;
  };
  std::vector<Named> Benchmarks = {
      {"filter lock", protocols::makeFilterLock},
      {"one-third rule", protocols::makeOneThird},
      {"parent/child",
       [](logic::TermManager &M) { return protocols::makeParentChild(M, true); }},
  };
  struct Config {
    const char *Name;
    bool Venn, Prefilter, Update;
  };
  std::vector<Config> Configs = {
      {"full", true, true, true},
      {"-venn", false, true, true},
      {"-prefilter", true, false, true},
      {"-card-upd", true, true, false},
  };

  std::printf("== Ablation: Venn decomposition / explicit pre-filter / "
              "CARD-UPD ==\n");
  std::printf("%-16s", "Program");
  for (const Config &C : Configs)
    std::printf(" %-16s", C.Name);
  std::printf("\n");
  for (const Named &B : Benchmarks) {
    std::printf("%-16s", B.Name);
    for (const Config &C : Configs) {
      Cell R = runWith(B.Make, C.Venn, C.Prefilter, C.Update);
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%s %.1fs",
                    R.Verified ? "ok" : "FAIL", R.Seconds);
      std::printf(" %-16s", Buf);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: the Sec. 2 case studies lose their proofs "
              "without the Venn\ndecomposition or the update axiom (paper "
              "Sec. 5.1-5.2); dropping the\npre-filter only costs time.\n");
  return 0;
}
