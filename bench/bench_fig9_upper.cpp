//===- bench/bench_fig9_upper.cpp - Paper Figure 9, upper table ------------------===//
//
// Part of sharpie. Reproduces the upper table of Fig. 9: cardinality-free
// reasoning compared with [Abdulla et al. 2007] on bakery-style mutual
// exclusion protocols (templates with two Tid quantifiers).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace sharpie;
using namespace sharpie::bench;

int main() {
  std::vector<RowResult> Rows;
  Rows.push_back(
      runBundle("Simplified Bakery", protocols::makeSimplifiedBakery));
  Rows.push_back(runBundle("Lamport's Bakery", protocols::makeLamportBakery,
                           /*TimeBudgetSeconds=*/300));
  Rows.push_back(runBundle("Bogus Bakery", protocols::makeBogusBakery));
  Rows.push_back(runBundle("Ticket Mutex", protocols::makeTicketMutex));
  printTable("Figure 9 (upper): comparison with [Abdulla et al. 2007]", Rows,
             "[Abdulla] (paper)");
  return 0;
}
